package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/datalog"
	"repro/internal/obs"
)

// postTraced posts an assert with a traceparent header and returns the
// response status, body, and echoed X-Trace-Id.
func postTraced(t testing.TB, url, body, traceparent string) (int, map[string]any, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out, resp.Header.Get("X-Trace-Id")
}

// waitForTrace polls the flight recorder for a finished trace: the
// record is added after the response is flushed to the client, so the
// client-side view can briefly race it.
func waitForTrace(t testing.TB, s *Server, traceID string) obs.TraceRecord {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, rec := range s.recorder.Snapshot() {
			if rec.TraceID.String() == traceID {
				return rec
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("trace %s never reached the flight recorder", traceID)
	return obs.TraceRecord{}
}

// checkTraceConsistent asserts the structural invariants every finished
// trace must satisfy: exactly one root, every parent resolves within
// the same trace, no span escapes the root's window.
func checkTraceConsistent(t testing.TB, rec obs.TraceRecord) {
	t.Helper()
	if len(rec.Spans) == 0 {
		t.Fatal("empty trace record")
	}
	root := rec.Root()
	byID := map[obs.SpanID]obs.Span{}
	for _, sp := range rec.Spans {
		byID[sp.ID] = sp
	}
	for _, sp := range rec.Spans {
		if sp.ID == root.ID {
			if sp.Parent != rec.Remote {
				t.Fatalf("root parent %v != remote %v", sp.Parent, rec.Remote)
			}
			continue
		}
		if _, ok := byID[sp.Parent]; !ok {
			t.Fatalf("span %q (%v) has parent %v outside trace %v", sp.Name, sp.ID, sp.Parent, rec.TraceID)
		}
		if sp.Start.Before(root.Start.Add(-time.Millisecond)) || sp.End.After(root.End.Add(time.Millisecond)) {
			t.Fatalf("span %q [%v, %v] escapes root window [%v, %v]", sp.Name, sp.Start, sp.End, root.Start, root.End)
		}
		if sp.End.Before(sp.Start) {
			t.Fatalf("span %q ends before it starts", sp.Name)
		}
	}
}

// TestAssertTraceEndToEnd is the acceptance check: one traced
// /v1/assert against a WAL-backed program produces a single trace whose
// spans cover admission, queue, WAL append + fsync, the solve (with
// nested component/round/rule/operator spans), and publish, with
// correct parentage and durations consistent with the request latency.
func TestAssertTraceEndToEnd(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	s, ts := startServer(t,
		[]ProgramSpec{{Name: "sp", Source: src, Options: datalog.Options{Executor: datalog.ExecutorStream}}},
		Config{WALDir: t.TempDir()})

	inbound := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	code, body, traceID := postTraced(t, ts.URL+"/v1/assert",
		`{"program":"sp","facts":[{"pred":"arc","args":["d","e",1]}]}`, inbound)
	if code != http.StatusOK {
		t.Fatalf("assert got %d: %v", code, body)
	}
	if traceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("X-Trace-Id = %q, want the inbound trace id", traceID)
	}

	rec := waitForTrace(t, s, traceID)
	checkTraceConsistent(t, rec)
	if rec.Remote.String() != "00f067aa0ba902b7" {
		t.Fatalf("remote parent = %v, want the inbound span id", rec.Remote)
	}
	root := rec.Root()
	if root.Name != "http /v1/assert" {
		t.Fatalf("root span %q", root.Name)
	}

	// Every commit phase shows up exactly once, parented on the root.
	for _, name := range []string{"admission", "queue", "solve", "wal.append", "wal.fsync", "publish"} {
		spans := rec.FindSpans(name)
		if len(spans) != 1 {
			t.Fatalf("%d %q spans, want 1 (trace: %+v)", len(spans), name, names(rec))
		}
		if spans[0].Parent != root.ID {
			t.Fatalf("%q span parented on %v, not the root", name, spans[0].Parent)
		}
	}

	// The sequential phases partition the request: their summed
	// durations cannot exceed the root span's (the request latency).
	var phases time.Duration
	for _, name := range []string{"admission", "queue", "solve", "publish"} {
		sp := rec.FindSpans(name)[0]
		phases += sp.End.Sub(sp.Start)
	}
	if rootDur := root.End.Sub(root.Start); phases > rootDur+time.Millisecond {
		t.Fatalf("phase durations sum to %v > request latency %v", phases, rootDur)
	}

	// The solve span nests the engine narration: component -> round ->
	// rule spans, and operator spans under the rules.
	solve := rec.FindSpans("solve")[0]
	var comps, rules, ops int
	for _, sp := range rec.Spans {
		switch {
		case strings.HasPrefix(sp.Name, "component "):
			comps++
			if sp.Parent != solve.ID {
				t.Fatalf("component span parented outside solve: %+v", sp)
			}
		case strings.HasPrefix(sp.Name, "rule "):
			rules++
		case strings.HasPrefix(sp.Name, "op"):
			ops++
		}
	}
	if comps == 0 || rules == 0 || ops == 0 {
		t.Fatalf("solve narration incomplete: %d component, %d rule, %d operator spans (trace: %v)",
			comps, rules, ops, names(rec))
	}
	// Operator spans carry the executor's measured cardinalities.
	for _, sp := range rec.Spans {
		if !strings.HasPrefix(sp.Name, "op") {
			continue
		}
		keys := map[string]bool{}
		for _, a := range sp.Attrs {
			keys[a.Key] = true
		}
		if !keys["op"] || !keys["rows_out"] {
			t.Fatalf("operator span missing counters: %+v", sp)
		}
	}
}

func names(rec obs.TraceRecord) []string {
	out := make([]string, len(rec.Spans))
	for i, sp := range rec.Spans {
		out[i] = sp.Name
	}
	return out
}

// TestTraceparentFallback: malformed inbound headers fall back to fresh
// identifiers instead of failing or propagating garbage.
func TestTraceparentFallback(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	s, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src}}, Config{})

	hex32 := regexp.MustCompile(`^[0-9a-f]{32}$`)
	for _, h := range []string{
		"",
		"garbage",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // reserved version
	} {
		code, body, traceID := postTraced(t, ts.URL+"/v1/assert",
			`{"program":"sp","facts":[{"pred":"arc","args":["x","y",1]}]}`, h)
		if code != http.StatusOK {
			t.Fatalf("traceparent %q: assert got %d: %v", h, code, body)
		}
		if !hex32.MatchString(traceID) {
			t.Fatalf("traceparent %q: X-Trace-Id %q is not a fresh 32-hex id", h, traceID)
		}
		if traceID == "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Fatalf("traceparent %q: malformed header's trace id was adopted", h)
		}
		rec := waitForTrace(t, s, traceID)
		checkTraceConsistent(t, rec)
		if !rec.Remote.IsZero() {
			t.Fatalf("traceparent %q: fallback trace kept a remote parent %v", h, rec.Remote)
		}
	}
}

// TestConcurrentTracesSelfConsistent hammers assert and query
// concurrently (run under -race) and checks that no recorded trace
// picked up spans from another request: every span's parent resolves
// within its own trace and stays inside the root window.
func TestConcurrentTracesSelfConsistent(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	s, ts := startServer(t,
		[]ProgramSpec{{Name: "sp", Source: src, Options: datalog.Options{Executor: datalog.ExecutorStream}}},
		Config{TraceBuffer: 256})

	const writers, readers = 8, 4
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				body := fmt.Sprintf(`{"program":"sp","facts":[{"pred":"arc","args":["w%d","n%d",1]}]}`, i, j)
				code, out, _ := postTraced(t, ts.URL+"/v1/assert", body, "")
				if code != http.StatusOK {
					t.Errorf("writer %d: %d %v", i, code, out)
					return
				}
			}
		}(i)
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Post(ts.URL+"/v1/query", "application/json",
					strings.NewReader(`{"program":"sp","pred":"s","args":["a","d"]}`))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	recs := s.recorder.Snapshot()
	if len(recs) < writers {
		t.Fatalf("only %d traces recorded", len(recs))
	}
	seen := map[string]bool{}
	for _, rec := range recs {
		checkTraceConsistent(t, rec)
		if seen[rec.TraceID.String()] {
			t.Fatalf("trace %v recorded twice", rec.TraceID)
		}
		seen[rec.TraceID.String()] = true
	}
}

// TestStatsOperatorsSection: /v1/stats exposes the per-rule operator
// counters, and the profile agrees with the stats ledger — the last
// operator's rows-out per rule sums to the program's total firings.
func TestStatsOperatorsSection(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t,
		[]ProgramSpec{{Name: "sp", Source: src, Options: datalog.Options{Executor: datalog.ExecutorStream}}},
		Config{})

	code, body := getJSON(t, ts.URL+"/v1/stats?name=sp")
	if code != http.StatusOK {
		t.Fatalf("stats got %d: %v", code, body)
	}
	prog := body["programs"].([]any)[0].(map[string]any)
	stats := prog["stats"].(map[string]any)
	operators, ok := prog["operators"].([]any)
	if !ok || len(operators) == 0 {
		t.Fatalf("operators section missing or empty: %v", prog["operators"])
	}

	// The existing invariant must survive the new section: per-rule
	// firings in the stats ledger sum to the program total.
	var firingsSum float64
	firingsByIndex := map[float64]float64{}
	for _, r := range prog["rules"].([]any) {
		rule := r.(map[string]any)
		firingsSum += rule["firings"].(float64)
		firingsByIndex[rule["index"].(float64)] = rule["firings"].(float64)
	}
	if total := stats["firings"].(float64); firingsSum != total || total == 0 {
		t.Fatalf("sum of per-rule firings %v != total firings %v", firingsSum, total)
	}

	// The operator counters agree with the ledger: for every rule with a
	// pipeline (facts compile to none), the last operator's rows-out is
	// that rule's firing count.
	withOps := 0
	for _, o := range operators {
		rule := o.(map[string]any)
		ops, _ := rule["ops"].([]any)
		if len(ops) == 0 {
			continue
		}
		withOps++
		last := ops[len(ops)-1].(map[string]any)
		if out, want := last["out"].(float64), firingsByIndex[rule["index"].(float64)]; out != want {
			t.Fatalf("rule %v: last operator rows-out %v != ledger firings %v", rule["index"], out, want)
		}
		for _, op := range ops {
			if op.(map[string]any)["kind"].(string) == "" {
				t.Fatalf("operator missing kind: %v", op)
			}
		}
	}
	if withOps == 0 {
		t.Fatal("no rule in the operators section has a pipeline")
	}
}

// TestExplainPlanEndpoint: /v1/explain/plan serves the operator tree,
// bare (EXPLAIN: zero counters) and analyzed (EXPLAIN ANALYZE: measured
// counters plus per-rule timings), in JSON and text.
func TestExplainPlanEndpoint(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t,
		[]ProgramSpec{{Name: "sp", Source: src, Options: datalog.Options{Executor: datalog.ExecutorStream}}},
		Config{})

	code, body := getJSON(t, ts.URL+"/v1/explain/plan?name=sp&analyze=1")
	if code != http.StatusOK {
		t.Fatalf("explain/plan got %d: %v", code, body)
	}
	if body["analyze"] != true || body["program"] != "sp" {
		t.Fatalf("envelope wrong: %v", body)
	}
	rules := body["profile"].(map[string]any)["rules"].([]any)
	if len(rules) == 0 {
		t.Fatal("no rules in analyzed profile")
	}
	sawCounter, sawFirings := false, false
	for _, r := range rules {
		rule := r.(map[string]any)
		if rule["firings"] != nil && rule["firings"].(float64) > 0 {
			sawFirings = true
		}
		for _, op := range rule["ops"].([]any) {
			if op.(map[string]any)["out"].(float64) > 0 {
				sawCounter = true
			}
		}
	}
	if !sawCounter || !sawFirings {
		t.Fatalf("analyzed profile carries no measurements (counters=%v firings=%v)", sawCounter, sawFirings)
	}

	// Bare EXPLAIN: structure with zero counters.
	_, bare := getJSON(t, ts.URL+"/v1/explain/plan?name=sp")
	for _, r := range bare["profile"].(map[string]any)["rules"].([]any) {
		for _, op := range r.(map[string]any)["ops"].([]any) {
			o := op.(map[string]any)
			if o["out"].(float64) != 0 || o["in"].(float64) != 0 {
				t.Fatalf("bare EXPLAIN leaked measurements: %v", o)
			}
		}
	}

	// Text rendering.
	resp, err := http.Get(ts.URL + "/v1/explain/plan?name=sp&analyze=1&format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(text), "EXPLAIN ANALYZE") || !strings.Contains(string(text), "scan") {
		t.Fatalf("text rendering wrong:\n%s", text)
	}

	// Unknown program: 404.
	code, _ = getJSON(t, ts.URL+"/v1/explain/plan?name=nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown program got %d, want 404", code)
	}
}

// TestDebugTracesEndpoint: the flight-recorder dump is valid Chrome
// trace-event JSON with the retention headers.
func TestDebugTracesEndpoint(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	s, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src}}, Config{})

	code, _, traceID := postTraced(t, ts.URL+"/v1/assert",
		`{"program":"sp","facts":[{"pred":"arc","args":["t","u",1]}]}`, "")
	if code != http.StatusOK {
		t.Fatalf("assert got %d", code)
	}
	waitForTrace(t, s, traceID)

	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("X-Traces-Retained") == "" || resp.Header.Get("X-Traces-Total") == "" {
		t.Fatal("retention headers missing")
	}
	var dump struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	found := false
	for _, ev := range dump.TraceEvents {
		args, _ := ev["args"].(map[string]any)
		if args != nil && args["trace_id"] == traceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("assert trace %s missing from /debug/traces dump", traceID)
	}
}
