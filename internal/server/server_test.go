package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/datalog"
)

// startServer materializes specs and returns a test HTTP server.
func startServer(t testing.TB, specs []ProgramSpec, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post sends a JSON body and decodes the JSON response.
func post(t testing.TB, url string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func get(t testing.TB, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

// getJSON is get with an explicit Accept: application/json header (the
// /metrics endpoint defaults to the Prometheus text format).
func getJSON(t testing.TB, url string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func loadExample(t testing.TB, name string) string {
	t.Helper()
	b, err := os.ReadFile("../../examples/programs/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServeShortestPathEndToEnd is the acceptance scenario: serve the
// shortestpath example, read a cost, assert a new edge through
// /v1/assert, and observe the updated shortest-path cost.
func TestServeShortestPathEndToEnd(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t, []ProgramSpec{{Name: "shortestpath", Source: src, Options: datalog.Options{Trace: true}}}, Config{})

	// s(a, d) = min(direct 9, a-b-c-d = 4) = 4 in the seed graph.
	code, resp := post(t, ts.URL+"/v1/query", `{"program":"shortestpath","op":"cost","pred":"s","args":["a","d"]}`)
	if code != http.StatusOK || resp["found"] != true {
		t.Fatalf("cost query: %d %v", code, resp)
	}
	if resp["cost"] != 4.0 {
		t.Fatalf("s(a, d) = %v, want 4", resp["cost"])
	}
	if resp["version"] != 1.0 {
		t.Fatalf("initial version %v, want 1", resp["version"])
	}

	// A new edge d-e opens a new shortest path s(a, e) = 5.
	code, resp = post(t, ts.URL+"/v1/assert", `{"program":"shortestpath","facts":[{"pred":"arc","args":["d","e",1]}]}`)
	if code != http.StatusOK {
		t.Fatalf("assert: %d %v", code, resp)
	}
	if resp["version"] != 2.0 {
		t.Fatalf("post-assert version %v, want 2", resp["version"])
	}
	code, resp = post(t, ts.URL+"/v1/query", `{"program":"shortestpath","op":"cost","pred":"s","args":["a","e"]}`)
	if code != http.StatusOK || resp["cost"] != 5.0 {
		t.Fatalf("s(a, e) after assert: %d %v", code, resp)
	}

	// A cheaper a-d arc improves both costs monotonically.
	code, resp = post(t, ts.URL+"/v1/assert", `{"program":"shortestpath","facts":[{"pred":"arc","args":["a","d",2]}]}`)
	if code != http.StatusOK {
		t.Fatalf("assert 2: %d %v", code, resp)
	}
	code, resp = post(t, ts.URL+"/v1/query", `{"program":"shortestpath","op":"cost","pred":"s","args":["a","d"]}`)
	if code != http.StatusOK || resp["cost"] != 2.0 {
		t.Fatalf("s(a, d) after cheaper arc: %d %v", code, resp)
	}
	code, resp = post(t, ts.URL+"/v1/query", `{"program":"shortestpath","op":"cost","pred":"s","args":["a","e"]}`)
	if code != http.StatusOK || resp["cost"] != 3.0 {
		t.Fatalf("s(a, e) after cheaper arc: %d %v", code, resp)
	}
}

func TestServeQueryOps(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src, Options: datalog.Options{}}}, Config{})

	// has: ground membership.
	code, resp := post(t, ts.URL+"/v1/query", `{"op":"has","pred":"s","args":["a","b"]}`)
	if code != http.StatusOK || resp["found"] != true {
		t.Fatalf("has: %d %v", code, resp)
	}
	// The program name may be omitted when a single program is served.
	if resp["program"] != "sp" {
		t.Fatalf("default program: %v", resp["program"])
	}
	// d has no outgoing arcs, so nothing is reachable from it.
	code, resp = post(t, ts.URL+"/v1/query", `{"op":"has","pred":"s","args":["d","a"]}`)
	if code != http.StatusOK || resp["found"] != false {
		t.Fatalf("has miss: %d %v", code, resp)
	}

	// facts with a wildcard pattern (null = wildcard).
	code, resp = post(t, ts.URL+"/v1/query", `{"op":"facts","pred":"s","args":["a",null]}`)
	if code != http.StatusOK {
		t.Fatalf("facts: %d %v", code, resp)
	}
	rows := resp["rows"].([]any)
	if len(rows) != int(resp["count"].(float64)) || len(rows) == 0 {
		t.Fatalf("facts rows: %v", resp)
	}
	for _, r := range rows {
		if r.([]any)[0] != "a" {
			t.Fatalf("bound position must be a: %v", r)
		}
	}
	// facts with no args enumerates the predicate.
	code, resp = post(t, ts.URL+"/v1/query", `{"op":"facts","pred":"arc"}`)
	if code != http.StatusOK || resp["count"].(float64) < 5 {
		t.Fatalf("all facts: %d %v", code, resp)
	}
}

func TestServeErrorMapping(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src}}, Config{})

	cases := []struct {
		name, url, body string
		wantStatus      int
		wantCode        string
		wantExit        float64
	}{
		{"unknown program", "/v1/query", `{"program":"nope","op":"has","pred":"s","args":["a","b"]}`, 404, "not_found", 1},
		{"unknown predicate", "/v1/query", `{"op":"has","pred":"nope","args":["a"]}`, 404, "not_found", 1},
		{"bad op", "/v1/query", `{"op":"frobnicate","pred":"s","args":["a","b"]}`, 400, "usage", 1},
		{"arity mismatch", "/v1/query", `{"op":"has","pred":"s","args":["a"]}`, 400, "usage", 1},
		{"wildcard in has", "/v1/query", `{"op":"has","pred":"s","args":["a",null]}`, 400, "usage", 1},
		{"bad json", "/v1/query", `{"op":`, 400, "usage", 1},
		{"empty batch", "/v1/assert", `{"facts":[]}`, 400, "usage", 1},
		{"assert unknown pred", "/v1/assert", `{"facts":[{"pred":"nope","args":["a"]}]}`, 404, "not_found", 1},
		{"assert arity", "/v1/assert", `{"facts":[{"pred":"arc","args":["a"]}]}`, 400, "parse", 2},
		{"assert wildcard", "/v1/assert", `{"facts":[{"pred":"arc","args":["a","b",null]}]}`, 400, "parse", 2},
		{"assert derived pred", "/v1/assert", `{"facts":[{"pred":"s","args":["a","b",1]}]}`, 409, "static", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, resp := post(t, ts.URL+tc.url, tc.body)
			if code != tc.wantStatus {
				t.Fatalf("status %d, want %d: %v", code, tc.wantStatus, resp)
			}
			e := resp["error"].(map[string]any)
			if e["code"] != tc.wantCode || e["exit_code"] != tc.wantExit {
				t.Fatalf("error %v, want code=%s exit=%v", e, tc.wantCode, tc.wantExit)
			}
		})
	}

	// After the failed asserts the model still answers from version 1.
	code, resp := post(t, ts.URL+"/v1/query", `{"op":"cost","pred":"s","args":["a","d"]}`)
	if code != 200 || resp["cost"] != 4.0 || resp["version"] != 1.0 {
		t.Fatalf("model must be untouched after failed asserts: %d %v", code, resp)
	}
}

// TestServeAssertBudgetBreach drives an assert past the program's
// MaxFacts budget: the request maps to 422/budget/exit 4 and the
// published model keeps answering from the previous generation.
func TestServeAssertBudgetBreach(t *testing.T) {
	// No facts initially, so the cold solve derives nothing and fits any
	// budget; the asserted chain then needs ~10 closure tuples, past the
	// per-solve cap of 3.
	const chain = `
reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
`
	_, ts := startServer(t, []ProgramSpec{{Name: "chain", Source: chain, Options: datalog.Options{MaxFacts: 3}}}, Config{})
	code, resp := post(t, ts.URL+"/v1/assert",
		`{"facts":[{"pred":"edge","args":["a","b"]},{"pred":"edge","args":["b","c"]},{"pred":"edge","args":["c","d"]},{"pred":"edge","args":["d","e"]}]}`)
	if code != 422 {
		t.Fatalf("budget breach: %d %v", code, resp)
	}
	e := resp["error"].(map[string]any)
	if e["code"] != "budget" || e["exit_code"] != 4.0 {
		t.Fatalf("budget error: %v", e)
	}
	// The failed batch left no partial state behind.
	code, resp = post(t, ts.URL+"/v1/query", `{"op":"facts","pred":"reach"}`)
	if code != 200 || resp["count"] != 0.0 || resp["version"] != 1.0 {
		t.Fatalf("model must stay at the old generation: %d %v", code, resp)
	}
}

func TestServeExplain(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src, Options: datalog.Options{Trace: true}}}, Config{})
	code, resp := post(t, ts.URL+"/v1/explain", `{"pred":"s","args":["a","d"],"depth":4}`)
	if code != http.StatusOK || resp["found"] != true {
		t.Fatalf("explain: %d %v", code, resp)
	}
	tree := resp["tree"].(string)
	if !strings.Contains(tree, "s(a, d, 4)") || !strings.Contains(tree, "[fact]") {
		t.Fatalf("explain tree:\n%s", tree)
	}
	// EDB facts are their own explanation.
	code, resp = post(t, ts.URL+"/v1/explain", `{"pred":"arc","args":["a","b"]}`)
	if code != http.StatusOK || resp["found"] != true || resp["rule"] != "[fact]" {
		t.Fatalf("explain fact: %d %v", code, resp)
	}

	// Tracing disabled -> 409.
	_, tsNoTrace := startServer(t, []ProgramSpec{{Name: "sp", Source: src, Options: datalog.Options{}}}, Config{})
	code, resp = post(t, tsNoTrace.URL+"/v1/explain", `{"pred":"s","args":["a","d"]}`)
	if code != http.StatusConflict {
		t.Fatalf("explain without tracing: %d %v", code, resp)
	}
}

func TestServeHealthzMetricsProgram(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src, Options: datalog.Options{Trace: true}}}, Config{})

	code, resp := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || resp["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, resp)
	}

	// Drive some traffic, then check the counters moved.
	post(t, ts.URL+"/v1/query", `{"op":"has","pred":"s","args":["a","b"]}`)
	post(t, ts.URL+"/v1/query", `{"op":"bad","pred":"s","args":[]}`)
	code, resp = getJSON(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	eps := resp["endpoints"].(map[string]any)
	q := eps["/v1/query"].(map[string]any)
	if q["count"].(float64) < 2 || q["errors"].(float64) < 1 {
		t.Fatalf("query metrics: %v", q)
	}
	progs := resp["programs"].(map[string]any)
	sp := progs["sp"].(map[string]any)
	if sp["version"] != 1.0 || sp["size"].(float64) <= 0 {
		t.Fatalf("program metrics: %v", sp)
	}

	code, resp = get(t, ts.URL+"/v1/program")
	if code != http.StatusOK {
		t.Fatalf("program: %d", code)
	}
	infos := resp["programs"].([]any)
	if len(infos) != 1 {
		t.Fatalf("programs: %v", infos)
	}
	info := infos[0].(map[string]any)
	cl := info["classification"].(map[string]any)
	if cl["admissible"] != true {
		t.Fatalf("classification: %v", cl)
	}
	decls := info["predicates"].([]any)
	if len(decls) == 0 {
		t.Fatalf("predicates: %v", info)
	}
	if info["tracing"] != true {
		t.Fatalf("tracing flag: %v", info)
	}
	if _, code := get2(t, ts.URL+"/v1/program?name=zzz"); code != 404 {
		t.Fatal("unknown program name must 404")
	}
}

// get2 returns body-decoded JSON and status in swapped order for
// one-line assertions.
func get2(t testing.TB, url string) (map[string]any, int) {
	t.Helper()
	code, resp := get(t, url)
	return resp, code
}

func TestServeMultiplePrograms(t *testing.T) {
	sp := loadExample(t, "shortestpath.mdl")
	game := loadExample(t, "game.mdl")
	_, ts := startServer(t, []ProgramSpec{
		{Name: "sp", Source: sp},
		// game.mdl aggregates above negation-recursion; it is only
		// evaluable with the well-founded fallback (§6.3).
		{Name: "game", Source: game, Options: datalog.Options{WFSFallback: true, SkipChecks: true}},
	}, Config{})

	// Naming the program routes to it.
	code, resp := post(t, ts.URL+"/v1/query", `{"program":"sp","op":"has","pred":"s","args":["a","b"]}`)
	if code != http.StatusOK || resp["found"] != true {
		t.Fatalf("sp query: %d %v", code, resp)
	}
	// Omitting the program with several served is an error.
	code, resp = post(t, ts.URL+"/v1/query", `{"op":"has","pred":"s","args":["a","b"]}`)
	if code != http.StatusNotFound {
		t.Fatalf("ambiguous program: %d %v", code, resp)
	}
}

// TestServeDeterministicResponses pins byte-identical JSON for repeated
// reads of the same model generation.
func TestServeDeterministicResponses(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src}}, Config{})
	read := func() string {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json",
			strings.NewReader(`{"op":"facts","pred":"s"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := read()
	for i := 0; i < 5; i++ {
		if got := read(); got != first {
			t.Fatalf("response %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	if !strings.Contains(first, `"rows":[[`) {
		t.Fatalf("rows shape: %s", first)
	}
}

// TestServeSetValuedCosts exercises set-valued costs over the wire:
// the union lattice produces {"set":[...]} JSON in canonical order, and
// set literals round-trip through /v1/assert.
func TestServeSetValuedCosts(t *testing.T) {
	const perms = `
.cost grants/3 : setunion.
.cost perms/2 : setunion.
grants(alice, reader, {read}).
grants(alice, editor, {read, write}).
perms(U, S) :- S ?= union P : grants(U, R, P).
`
	_, ts := startServer(t, []ProgramSpec{{Name: "perms", Source: perms}}, Config{})
	code, resp := post(t, ts.URL+"/v1/query", `{"op":"cost","pred":"perms","args":["alice"]}`)
	if code != http.StatusOK || resp["found"] != true {
		t.Fatalf("perms(alice): %d %v", code, resp)
	}
	set := resp["cost"].(map[string]any)["set"].([]any)
	if len(set) != 2 || set[0] != "read" || set[1] != "write" {
		t.Fatalf("perms(alice) cost: %v", resp["cost"])
	}
	// Asserting another grant with a set literal widens the union.
	code, resp = post(t, ts.URL+"/v1/assert",
		`{"facts":[{"pred":"grants","args":["alice","ops",{"set":["exec"]}]}]}`)
	if code != http.StatusOK {
		t.Fatalf("assert set literal: %d %v", code, resp)
	}
	code, resp = post(t, ts.URL+"/v1/query", `{"op":"cost","pred":"perms","args":["alice"]}`)
	if code != http.StatusOK {
		t.Fatalf("perms after assert: %d %v", code, resp)
	}
	set = resp["cost"].(map[string]any)["set"].([]any)
	if len(set) != 3 || set[0] != "exec" {
		t.Fatalf("widened perms: %v", resp["cost"])
	}
}

func TestServeValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("no programs must fail")
	}
	if _, err := New([]ProgramSpec{{Name: "", Source: "p(a).\n"}}, Config{}); err == nil {
		t.Fatal("empty name must fail")
	}
	if _, err := New([]ProgramSpec{
		{Name: "x", Source: "p(a).\n"},
		{Name: "x", Source: "q(a).\n"},
	}, Config{}); err == nil {
		t.Fatal("duplicate name must fail")
	}
	if _, err := New([]ProgramSpec{{Name: "x", Source: "p(X :- q(X).\n"}}, Config{}); err == nil {
		t.Fatal("parse error must surface")
	} else if !errors.Is(err, datalog.ErrParse) {
		t.Fatalf("parse error class: %v", err)
	}
}
