package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"repro/datalog"
)

// JSON encoding of rule-language values. The wire format keeps the
// common cases bare and disambiguates the rest with one-key objects:
//
//	symbol a      <->  "a"
//	number 3.5    <->  3.5        (±infinity as {"num":"inf"} / {"num":"-inf"})
//	boolean       <->  true / false
//	string "x"    <->  {"str":"x"}
//	set {a, b}    <->  {"set":["a","b"]}   (canonical element order)
//	wildcard      <->  null       (query patterns only)
//
// Encoding is deterministic: equal values produce identical bytes (set
// elements are emitted in the canonical sorted order the engine already
// maintains, numbers via strconv's shortest round-trip form, object
// keys are fixed), so responses are directly comparable in golden tests.

// encodeValue appends the deterministic JSON encoding of v to b.
func encodeValue(b *bytes.Buffer, v datalog.Value) {
	switch v.Kind() {
	case datalog.SymValue:
		t, _ := v.Text()
		enc, _ := json.Marshal(t)
		b.Write(enc)
	case datalog.NumValue:
		n, _ := v.Float()
		switch {
		case math.IsInf(n, 1):
			b.WriteString(`{"num":"inf"}`)
		case math.IsInf(n, -1):
			b.WriteString(`{"num":"-inf"}`)
		case math.IsNaN(n):
			b.WriteString(`{"num":"nan"}`)
		default:
			b.WriteString(strconv.FormatFloat(n, 'g', -1, 64))
		}
	case datalog.BoolValue:
		t, _ := v.Truth()
		if t {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case datalog.StrValue:
		t, _ := v.Text()
		enc, _ := json.Marshal(t)
		b.WriteString(`{"str":`)
		b.Write(enc)
		b.WriteByte('}')
	case datalog.SetValue:
		elems, _ := v.Elems()
		b.WriteString(`{"set":[`)
		for i, e := range elems {
			if i > 0 {
				b.WriteByte(',')
			}
			encodeValue(b, e)
		}
		b.WriteString(`]}`)
	default:
		b.WriteString("null")
	}
}

// encodeRow encodes one tuple as a JSON array of values.
func encodeRow(b *bytes.Buffer, row []datalog.Value) {
	b.WriteByte('[')
	for i, v := range row {
		if i > 0 {
			b.WriteByte(',')
		}
		encodeValue(b, v)
	}
	b.WriteByte(']')
}

// jsonValue wraps a Value for use inside encoding/json structures.
type jsonValue struct{ v datalog.Value }

func (j jsonValue) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	encodeValue(&b, j.v)
	return b.Bytes(), nil
}

// jsonRows wraps a row set for use inside encoding/json structures.
type jsonRows [][]datalog.Value

func (j jsonRows) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, row := range j {
		if i > 0 {
			b.WriteByte(',')
		}
		encodeRow(&b, row)
	}
	b.WriteByte(']')
	return b.Bytes(), nil
}

// decodeValue parses one wire value. allowWild admits null wildcards
// (query patterns); asserts reject them.
func decodeValue(raw json.RawMessage, allowWild bool) (datalog.Value, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return datalog.Value{}, fmt.Errorf("empty value")
	}
	switch trimmed[0] {
	case 'n': // null
		var z any
		if err := json.Unmarshal(trimmed, &z); err != nil || z != nil {
			return datalog.Value{}, fmt.Errorf("bad value %s", trimmed)
		}
		if !allowWild {
			return datalog.Value{}, fmt.Errorf("null (wildcard) is not a constant")
		}
		return datalog.Any(), nil
	case 't', 'f':
		var b bool
		if err := json.Unmarshal(trimmed, &b); err != nil {
			return datalog.Value{}, fmt.Errorf("bad value %s", trimmed)
		}
		return datalog.Bool(b), nil
	case '"':
		var s string
		if err := json.Unmarshal(trimmed, &s); err != nil {
			return datalog.Value{}, fmt.Errorf("bad value %s", trimmed)
		}
		return datalog.Sym(s), nil
	case '{':
		return decodeObjectValue(trimmed, allowWild)
	case '[':
		return datalog.Value{}, fmt.Errorf("bad value %s (sets are written {\"set\":[...]})", trimmed)
	default:
		var n float64
		if err := json.Unmarshal(trimmed, &n); err != nil {
			return datalog.Value{}, fmt.Errorf("bad value %s", trimmed)
		}
		return datalog.Num(n), nil
	}
}

func decodeObjectValue(raw []byte, allowWild bool) (datalog.Value, error) {
	var obj map[string]json.RawMessage
	if err := json.Unmarshal(raw, &obj); err != nil {
		return datalog.Value{}, fmt.Errorf("bad value %s", raw)
	}
	if len(obj) != 1 {
		return datalog.Value{}, fmt.Errorf("value object must have exactly one of \"str\", \"num\", \"set\", got %s", raw)
	}
	for key, inner := range obj {
		switch key {
		case "str":
			var s string
			if err := json.Unmarshal(inner, &s); err != nil {
				return datalog.Value{}, fmt.Errorf("bad string value %s", raw)
			}
			return datalog.Str(s), nil
		case "num":
			var s string
			if err := json.Unmarshal(inner, &s); err == nil {
				switch s {
				case "inf":
					return datalog.Num(math.Inf(1)), nil
				case "-inf":
					return datalog.Num(math.Inf(-1)), nil
				}
				n, perr := strconv.ParseFloat(s, 64)
				if perr != nil {
					return datalog.Value{}, fmt.Errorf("bad number %q", s)
				}
				return datalog.Num(n), nil
			}
			var n float64
			if err := json.Unmarshal(inner, &n); err != nil {
				return datalog.Value{}, fmt.Errorf("bad number value %s", raw)
			}
			return datalog.Num(n), nil
		case "set":
			var elems []json.RawMessage
			if err := json.Unmarshal(inner, &elems); err != nil {
				return datalog.Value{}, fmt.Errorf("bad set value %s", raw)
			}
			vs := make([]datalog.Value, len(elems))
			for i, e := range elems {
				v, err := decodeValue(e, false)
				if err != nil {
					return datalog.Value{}, fmt.Errorf("set element %d: %w", i, err)
				}
				vs[i] = v
			}
			return datalog.SetOf(vs...), nil
		case "bool":
			var b bool
			if err := json.Unmarshal(inner, &b); err != nil {
				return datalog.Value{}, fmt.Errorf("bad bool value %s", raw)
			}
			return datalog.Bool(b), nil
		default:
			return datalog.Value{}, fmt.Errorf("unknown value form %q", key)
		}
	}
	return datalog.Value{}, fmt.Errorf("bad value %s", raw)
}

// decodeArgs parses a JSON argument array.
func decodeArgs(raw []json.RawMessage, allowWild bool) ([]datalog.Value, error) {
	out := make([]datalog.Value, len(raw))
	for i, r := range raw {
		v, err := decodeValue(r, allowWild)
		if err != nil {
			return nil, fmt.Errorf("args[%d]: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
