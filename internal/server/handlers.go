package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/datalog"
	"repro/internal/obs"
)

// maxBodyBytes bounds request bodies; assert batches beyond this are
// split by the client.
const maxBodyBytes = 8 << 20

// Handler returns the HTTP API:
//
//	GET  /healthz          liveness and uptime (200 as long as the process serves)
//	GET  /readyz           readiness: 503 while materializing or draining
//	GET  /metrics          Prometheus text exposition (JSON via Accept)
//	GET  /debug/traces     flight-recorder dump (Chrome trace-event JSON)
//	GET  /v1/program       classification, declarations and model info
//	GET  /v1/stats         per-rule and per-component evaluation breakdowns
//	GET  /v1/explain/plan  compiled operator trees; ?analyze=1 adds measured counters
//	POST /v1/query         point lookups (has/cost) and wildcard scans (facts)
//	POST /v1/assert        batch EDB insertion through the group-commit queue
//	POST /v1/explain       derivation trees (requires tracing)
//
// Every request — including unknown paths — passes through the
// instrumentation middleware: latency/error accounting (unknowns are
// recorded under the "other" endpoint), an X-Request-Id echo, a
// per-request trace (continuing an inbound W3C traceparent header,
// echoed as X-Trace-Id and retained in the flight recorder), and
// structured request logs when Config.Logger is set.
//
// Call Materialize first; the handler answers 503 for query endpoints
// until every program has a published model.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	mux.HandleFunc("GET /v1/program", s.handleProgram)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/explain/plan", s.handleExplainPlan)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/assert", s.handleAssert)
	mux.HandleFunc("POST /v1/explain", s.handleExplain)
	return s.instrument(mux)
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// newRequestID returns a 16-hex-char random request identifier.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// instrument wraps the whole mux: every request (known endpoint or not)
// is timed, counted under its normalized endpoint label, tagged with a
// request id (an inbound X-Request-Id is honored, otherwise one is
// generated; either way it is echoed on the response), traced (an
// inbound W3C traceparent header is continued, a malformed or absent
// one falls back to fresh identifiers; the trace id is echoed as
// X-Trace-Id), and logged when a structured logger is configured. The
// finished trace lands in the flight recorder and, with Config.TraceDir
// set, on disk as a Chrome trace-event file.
func (s *Server) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = newRequestID()
		}
		w.Header().Set("X-Request-Id", reqID)
		var tr *obs.Trace
		if tid, parent, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
			tr = obs.ContinueTrace("http "+r.URL.Path, tid, parent)
		} else {
			tr = obs.NewTrace("http " + r.URL.Path)
		}
		traceID := tr.ID().String()
		w.Header().Set("X-Trace-Id", traceID)
		r = r.WithContext(withTrace(r.Context(), &requestTrace{tr: tr, reqID: reqID}))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		r.Body = http.MaxBytesReader(sw, r.Body, maxBodyBytes)
		h.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		rec := tr.Finish(
			obs.StringAttr("request_id", reqID),
			obs.StringAttr("method", r.Method),
			obs.StringAttr("path", r.URL.Path),
			obs.IntAttr("status", int64(sw.status)))
		s.recorder.Add(rec)
		if s.cfg.TraceDir != "" {
			if err := saveTrace(s.cfg.TraceDir, rec); err != nil {
				s.logf("trace %s: write to %s failed: %v", traceID, s.cfg.TraceDir, err)
			}
		}
		endpoint := s.metrics.endpointLabel(r.URL.Path)
		s.metrics.observe(endpoint, sw.status, elapsed, traceID)
		if lg := s.cfg.Logger; lg != nil {
			lg.Info("request",
				"request_id", reqID,
				"trace_id", traceID,
				"method", r.Method,
				"path", r.URL.Path,
				"endpoint", endpoint,
				"status", sw.status,
				"duration_ms", float64(elapsed.Nanoseconds())/1e6,
				"remote", r.RemoteAddr)
			if s.cfg.SlowRequest > 0 && elapsed >= s.cfg.SlowRequest {
				// The trace id doubles as the exemplar: it points at the
				// flight-recorder trace that explains where this outlier's
				// time went.
				lg.Warn("slow request",
					"request_id", reqID,
					"trace_id", traceID,
					"method", r.Method,
					"path", r.URL.Path,
					"status", sw.status,
					"duration_ms", float64(elapsed.Nanoseconds())/1e6,
					"threshold_ms", float64(s.cfg.SlowRequest.Nanoseconds())/1e6)
			}
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, e *apiError) {
	// Every backpressure-class response (429/503) carries a Retry-After
	// hint; 1s is the floor when the producer had nothing better.
	if e.status == http.StatusTooManyRequests || e.status == http.StatusServiceUnavailable {
		if e.RetryAfter <= 0 {
			e.RetryAfter = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfter))
	}
	writeJSON(w, e.status, map[string]*apiError{"error": e})
}

// statsJSON is the wire form of evaluation statistics.
type statsJSON struct {
	Components int   `json:"components"`
	Rounds     int   `json:"rounds"`
	Firings    int64 `json:"firings"`
	Derived    int64 `json:"derived"`
	Probes     int64 `json:"probes"`
}

func toStatsJSON(st datalog.Stats) statsJSON {
	return statsJSON{Components: st.Components, Rounds: st.Rounds, Firings: st.Firings, Derived: st.Derived, Probes: st.Probes}
}

// readyState classifies the server's readiness: "ok" when every model
// is published and the server is accepting work, otherwise the reason
// it is not ("draining", "wal_failed", "replaying", "materializing").
func (s *Server) readyState() string {
	if s.Draining() {
		return "draining"
	}
	for _, name := range s.names {
		svc := s.svcs[name]
		if svc.walBroken.Load() {
			return "wal_failed"
		}
		if svc.replaying.Load() {
			return "replaying"
		}
		if svc.current() == nil {
			return "materializing"
		}
	}
	return "ok"
}

// handleHealthz is liveness: 200 as long as the process is serving,
// whatever the materialization or drain state — restarting a process
// that is busy materializing only makes overload worse. The body still
// carries the state for humans; machines gate on /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"state":          s.readyState(),
		"uptime_seconds": time.Since(s.start).Seconds(),
		"programs":       s.names,
	})
}

// handleReadyz is readiness: 503 while any program is still
// materializing and while the server drains, so load balancers stop
// routing before shutdown completes and never route to a cold start.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	state := s.readyState()
	status := http.StatusOK
	if state != "ok" {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	body := map[string]any{
		"status":   state,
		"programs": s.names,
	}
	if state == "replaying" {
		// Replay progress by program, so operators can see how far a
		// warm start has gotten through the write-ahead log.
		progress := map[string]any{}
		for _, name := range s.names {
			svc := s.svcs[name]
			if svc.replaying.Load() {
				progress[name] = map[string]uint64{
					"replayed": svc.replayDone.Load(),
					"total":    svc.replayTotal.Load(),
				}
			}
		}
		body["replay"] = progress
	}
	writeJSON(w, status, body)
}

// handleMetrics renders the Prometheus text exposition format by
// default; clients sending Accept: application/json get the legacy
// JSON snapshot (endpoint counters plus per-program model info).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		programs := map[string]any{}
		for _, name := range s.names {
			st := s.svcs[name].current()
			if st == nil {
				programs[name] = map[string]any{"materialized": false}
				continue
			}
			programs[name] = map[string]any{
				"version": st.version,
				"size":    st.model.Size(),
				"stats":   toStatsJSON(st.model.Stats()),
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"uptime_seconds": time.Since(s.start).Seconds(),
			"endpoints":      s.metrics.snapshot(),
			"programs":       programs,
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.metrics.reg.WritePrometheus(w)
}

// ruleStatsJSON is the wire form of one rule's breakdown.
type ruleStatsJSON struct {
	Index     int     `json:"index"`
	Rule      string  `json:"rule"`
	Component int     `json:"component"`
	Rounds    int     `json:"rounds"`
	Firings   int64   `json:"firings"`
	Derived   int64   `json:"derived"`
	Probes    int64   `json:"probes"`
	Seconds   float64 `json:"seconds"`
}

// componentStatsJSON is the wire form of one component's breakdown.
type componentStatsJSON struct {
	Index      int     `json:"index"`
	Preds      string  `json:"preds"`
	WFS        bool    `json:"wfs"`
	Admissible bool    `json:"admissible"`
	Rounds     int     `json:"rounds"`
	Firings    int64   `json:"firings"`
	Derived    int64   `json:"derived"`
	Probes     int64   `json:"probes"`
	Seconds    float64 `json:"seconds"`
}

// handleStats serves the per-rule/per-component evaluation breakdowns
// of the published models, rules sorted hottest-first by cumulative
// evaluation time. ?name= restricts to one program.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	names := s.names
	if want := r.URL.Query().Get("name"); want != "" {
		if _, ok := s.svcs[want]; !ok {
			writeErr(w, errNotFound(fmt.Sprintf("unknown program %q", want)))
			return
		}
		names = []string{want}
	}
	out := make([]map[string]any, 0, len(names))
	for _, name := range names {
		svc := s.svcs[name]
		st := svc.current()
		if st == nil {
			out = append(out, map[string]any{"name": name, "materialized": false})
			continue
		}
		stats := st.model.Stats()
		rules := make([]ruleStatsJSON, len(stats.Rules))
		for i, rs := range stats.Rules {
			rules[i] = ruleStatsJSON{
				Index: rs.Index, Rule: rs.Rule, Component: rs.Component,
				Rounds: rs.Rounds, Firings: rs.Firings, Derived: rs.Derived,
				Probes: rs.Probes, Seconds: float64(rs.Nanos) / 1e9,
			}
		}
		sort.SliceStable(rules, func(i, j int) bool { return rules[i].Seconds > rules[j].Seconds })
		comps := make([]componentStatsJSON, len(stats.Comps))
		for i, cs := range stats.Comps {
			comps[i] = componentStatsJSON{
				Index: cs.Index, Preds: cs.Preds, WFS: cs.WFS, Admissible: cs.Admissible,
				Rounds: cs.Rounds, Firings: cs.Firings, Derived: cs.Derived,
				Probes: cs.Probes, Seconds: float64(cs.Nanos) / 1e9,
			}
		}
		// operators carries the streaming executor's cumulative
		// per-operator counters per rule (zero when the program runs on
		// the tuple interpreter, which is uninstrumented).
		prof := svc.prog.Profile()
		out = append(out, map[string]any{
			"name":       name,
			"version":    st.version,
			"size":       st.model.Size(),
			"stats":      toStatsJSON(stats),
			"rules":      rules,
			"components": comps,
			"operators":  prof.Rules,
		})
	}
	writeJSONCtx(ctx, w, http.StatusOK, map[string]any{"programs": out})
}

// predDeclJSON is the wire form of one predicate declaration.
type predDeclJSON struct {
	Name       string `json:"name"`
	Arity      int    `json:"arity"`
	HasCost    bool   `json:"has_cost"`
	Lattice    string `json:"lattice,omitempty"`
	HasDefault bool   `json:"has_default,omitempty"`
}

func (s *Server) handleProgram(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	names := s.names
	if want := r.URL.Query().Get("name"); want != "" {
		if _, ok := s.svcs[want]; !ok {
			writeErr(w, errNotFound(fmt.Sprintf("unknown program %q", want)))
			return
		}
		names = []string{want}
	}
	out := make([]map[string]any, 0, len(names))
	for _, name := range names {
		svc := s.svcs[name]
		cl := svc.prog.Classify()
		decls := svc.prog.Predicates()
		preds := make([]predDeclJSON, len(decls))
		for i, d := range decls {
			preds[i] = predDeclJSON{Name: d.Name, Arity: d.Arity, HasCost: d.HasCost, Lattice: d.Lattice, HasDefault: d.HasDefault}
		}
		info := map[string]any{
			"name": name,
			"classification": map[string]any{
				"admissible":           cl.Admissible,
				"reason":               cl.Reason,
				"r_monotonic":          cl.RMonotonic,
				"aggregate_stratified": cl.AggregateStratified,
				"negation_stratified":  cl.NegationStratified,
			},
			"predicates": preds,
			"tracing":    svc.spec.Options.Trace,
		}
		if svc.spec.Checkpoint != "" {
			info["checkpoint"] = svc.spec.Checkpoint
		}
		if svc.wal != nil {
			info["wal"] = map[string]any{
				"dir":      svc.wal.Dir(),
				"fsync":    string(s.walFsyncPolicy()),
				"segments": svc.wal.Segments(),
				"broken":   svc.walBroken.Load(),
			}
		}
		if st := svc.current(); st != nil {
			info["version"] = st.version
			info["size"] = st.model.Size()
			info["warm_started"] = st.warm
			info["seq"] = svc.seq.Load()
			info["stats"] = toStatsJSON(st.model.Stats())
		}
		out = append(out, info)
	}
	writeJSONCtx(ctx, w, http.StatusOK, map[string]any{"programs": out})
}

// queryRequest is the /v1/query body.
type queryRequest struct {
	Program string            `json:"program"`
	Op      string            `json:"op"`
	Pred    string            `json:"pred"`
	Args    []json.RawMessage `json:"args"`
}

// resolve parses the common program/predicate/model triple of the read
// and explain endpoints.
func (s *Server) resolve(w http.ResponseWriter, program, pred string) (*service, *modelState, datalog.PredDecl, bool) {
	svc, err := s.lookup(program)
	if err != nil {
		writeErr(w, errNotFound(err.Error()))
		return nil, nil, datalog.PredDecl{}, false
	}
	st := svc.current()
	if st == nil {
		writeErr(w, errMaterializing())
		return nil, nil, datalog.PredDecl{}, false
	}
	if pred == "" {
		writeErr(w, errUsage("missing \"pred\""))
		return nil, nil, datalog.PredDecl{}, false
	}
	decl, ok := svc.decls[pred]
	if !ok {
		writeErr(w, errNotFound(fmt.Sprintf("program %s has no predicate %q", svc.name, pred)))
		return nil, nil, datalog.PredDecl{}, false
	}
	return svc, st, decl, true
}

// nonCostArity is the number of lookup arguments of a predicate (the
// cost argument is computed, not addressed).
func nonCostArity(d datalog.PredDecl) int {
	if d.HasCost {
		return d.Arity - 1
	}
	return d.Arity
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, errUsage("bad request body: "+err.Error()))
		return
	}
	svc, st, decl, ok := s.resolve(w, req.Program, req.Pred)
	if !ok {
		return
	}
	if !s.acquireRead(svc, "/v1/query") {
		writeErr(w, errOverloaded(1))
		return
	}
	defer s.releaseRead(svc)
	wildOK := req.Op == "facts"
	args, err := decodeArgs(req.Args, wildOK)
	if err != nil {
		writeErr(w, errUsage(err.Error()))
		return
	}
	want := nonCostArity(decl)
	resp := map[string]any{"program": svc.name, "op": req.Op, "pred": req.Pred, "version": st.version}
	switch req.Op {
	case "has", "cost":
		if len(args) != want {
			writeErr(w, errUsage(fmt.Sprintf("%s takes %d lookup arguments, got %d", req.Pred, want, len(args))))
			return
		}
		if req.Op == "cost" && !decl.HasCost {
			writeErr(w, errUsage(fmt.Sprintf("%s is not a cost predicate", req.Pred)))
			return
		}
		if req.Op == "has" {
			resp["found"] = st.model.Has(req.Pred, args...)
		} else {
			cost, found := st.model.Cost(req.Pred, args...)
			resp["found"] = found
			if found {
				resp["cost"] = jsonValue{cost}
			}
		}
	case "facts", "":
		resp["op"] = "facts"
		var rows [][]datalog.Value
		if len(args) == 0 {
			rows = st.model.Facts(req.Pred)
		} else if len(args) != want {
			writeErr(w, errUsage(fmt.Sprintf("%s takes %d lookup arguments, got %d", req.Pred, want, len(args))))
			return
		} else {
			rows = st.model.Match(req.Pred, args...)
		}
		resp["rows"] = jsonRows(rows)
		resp["count"] = len(rows)
	default:
		writeErr(w, errUsage(fmt.Sprintf("unknown op %q (want \"has\", \"cost\" or \"facts\")", req.Op)))
		return
	}
	writeJSONCtx(ctx, w, http.StatusOK, resp)
}

// assertRequest is the /v1/assert body: one batch of EDB facts.
type assertRequest struct {
	Program string `json:"program"`
	Facts   []struct {
		Pred string            `json:"pred"`
		Args []json.RawMessage `json:"args"`
	} `json:"facts"`
}

func (s *Server) handleAssert(w http.ResponseWriter, r *http.Request) {
	var req assertRequest
	// Every exit path records its outcome code (satisfying the
	// mdl_assert_outcomes_total contract: ok or the error kind), under
	// the resolved program name once lookup has succeeded.
	outcome := "ok"
	program := ""
	defer func() { s.metrics.assertOutcome(program, outcome) }()
	fail := func(e *apiError) {
		outcome = e.Code
		writeErr(w, e)
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(errUsage("bad request body: " + err.Error()))
		return
	}
	program = req.Program
	svc, err := s.lookup(req.Program)
	if err != nil {
		fail(errNotFound(err.Error()))
		return
	}
	program = svc.name
	if svc.current() == nil {
		fail(errMaterializing())
		return
	}
	if len(req.Facts) == 0 {
		fail(errUsage("empty fact batch"))
		return
	}
	facts := make([]datalog.Fact, len(req.Facts))
	for i, f := range req.Facts {
		// Validate against the load-time declarations so unknown
		// predicates are rejected up front (the engine's schema table is
		// shared with concurrent readers and must not grow at runtime).
		decl, ok := svc.decls[f.Pred]
		if !ok {
			fail(errNotFound(fmt.Sprintf("program %s has no predicate %q", svc.name, f.Pred)))
			return
		}
		if len(f.Args) != decl.Arity {
			fail(&apiError{
				Code:     "parse",
				Message:  fmt.Sprintf("facts[%d]: %s takes %d arguments (cost last for cost predicates), got %d", i, f.Pred, decl.Arity, len(f.Args)),
				ExitCode: 2, status: http.StatusBadRequest,
			})
			return
		}
		args, err := decodeArgs(f.Args, false)
		if err != nil {
			fail(&apiError{Code: "parse", Message: fmt.Sprintf("facts[%d]: %v", i, err), ExitCode: 2, status: http.StatusBadRequest})
			return
		}
		facts[i] = datalog.NewFact(f.Pred, args...)
	}
	// Validation done (parse errors stayed per-batch, above); from here
	// the batch enters the group-commit path. Admission first: a
	// draining server or a full queue sheds immediately with a backoff
	// hint — the queue bound, not the client count, caps commit latency.
	if s.Draining() {
		s.metrics.shed.With("/v1/assert", "draining").Inc()
		fail(errDrainingShed())
		return
	}
	cr := &commitReq{facts: facts, done: make(chan commitResult, 1)}
	if rt := traceFrom(r.Context()); rt != nil {
		// Hand the request's trace to the committer before enqueueing
		// (the committer may pick the batch up immediately). The
		// admission span covers everything up to the enqueue attempt:
		// decode, validation, and the admission decision itself.
		cr.reqID = rt.reqID
		cr.tr = rt.tr
		cr.root = rt.tr.Root()
		cr.enqueued = time.Now()
		rt.tr.RecordSpan("admission", cr.root, rt.tr.RootStart(), cr.enqueued,
			obs.IntAttr("facts", int64(len(facts))))
	}
	if err := svc.enqueue(cr); err != nil {
		if err == errDraining {
			s.metrics.shed.With("/v1/assert", "draining").Inc()
			fail(errDrainingShed())
		} else {
			s.metrics.shed.With("/v1/assert", "queue_full").Inc()
			fail(errQueueFullShed(svc.retryAfter()))
		}
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	select {
	case res := <-cr.done:
		if res.err != nil {
			fail(classifySolveError(res.err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"program": svc.name,
			"version": res.state.version,
			"size":    res.state.model.Size(),
			// seq is this batch's commit sequence number: monotonic per
			// program, durable when a WAL is configured, and comparable
			// against the "seq" of /v1/program after a restart to resolve
			// the ack-ambiguity window.
			"seq":       res.seq,
			"asserted":  len(facts),
			"coalesced": res.coalesced,
			"stats":     toStatsJSON(res.stats),
		})
	case <-ctx.Done():
		// The batch stays owned by the committer and will still be
		// committed or rejected; only this wait gave up. Clients see the
		// group-commit ambiguity window documented in docs/SERVER.md and
		// should reconcile via the model version on retry.
		fail(&apiError{
			Code: "canceled", Message: "request deadline exceeded while awaiting commit; the batch may still commit",
			ExitCode: 4, RetryAfter: svc.retryAfter(), status: http.StatusServiceUnavailable,
		})
	}
}

// explainRequest is the /v1/explain body.
type explainRequest struct {
	Program string            `json:"program"`
	Pred    string            `json:"pred"`
	Args    []json.RawMessage `json:"args"`
	Depth   int               `json:"depth"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, errUsage("bad request body: "+err.Error()))
		return
	}
	svc, st, decl, ok := s.resolve(w, req.Program, req.Pred)
	if !ok {
		return
	}
	if !s.acquireRead(svc, "/v1/explain") {
		writeErr(w, errOverloaded(1))
		return
	}
	defer s.releaseRead(svc)
	if !svc.spec.Options.Trace {
		writeErr(w, &apiError{Code: "tracing_disabled", Message: "program served without tracing; restart with tracing enabled for derivation trees", ExitCode: 1, status: http.StatusConflict})
		return
	}
	args, err := decodeArgs(req.Args, false)
	if err != nil {
		writeErr(w, errUsage(err.Error()))
		return
	}
	if len(args) != nonCostArity(decl) {
		writeErr(w, errUsage(fmt.Sprintf("%s takes %d lookup arguments, got %d", req.Pred, nonCostArity(decl), len(args))))
		return
	}
	depth := req.Depth
	if depth <= 0 {
		depth = 10
	}
	rule, supports, tree, found := svc.explain(req.Pred, depth, args)
	resp := map[string]any{
		"program": svc.name,
		"pred":    req.Pred,
		"version": st.version,
		"found":   found,
	}
	if found {
		resp["rule"] = rule
		resp["supports"] = supports
		resp["tree"] = tree
	} else if st.model.Has(req.Pred, args...) {
		// Present but underived: an EDB fact is its own explanation.
		resp["found"] = true
		resp["rule"] = "[fact]"
		resp["supports"] = []string{}
		resp["tree"] = ""
	}
	writeJSONCtx(ctx, w, http.StatusOK, resp)
}

// handleDebugTraces dumps the flight recorder — the most recent request
// traces — as Chrome trace-event JSON, loadable directly in
// about:tracing or ui.perfetto.dev. X-Traces-Retained/X-Traces-Total
// report how much history the ring has dropped.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	recs := s.recorder.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Traces-Retained", strconv.Itoa(len(recs)))
	w.Header().Set("X-Traces-Total", strconv.FormatUint(s.recorder.Total(), 10))
	w.WriteHeader(http.StatusOK)
	_ = obs.WriteChromeTrace(w, recs)
}

// handleExplainPlan serves the compiled operator tree of a program's
// rules — EXPLAIN — and, with ?analyze=1, annotates it with the
// measured cumulative counters of the streaming executor plus per-rule
// timings from the stats ledger — EXPLAIN ANALYZE. JSON by default (the
// machine-readable planner-input form); ?format=text renders the human
// tree.
func (s *Server) handleExplainPlan(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	svc, err := s.lookup(r.URL.Query().Get("name"))
	if err != nil {
		writeErr(w, errNotFound(err.Error()))
		return
	}
	st := svc.current()
	if st == nil {
		writeErr(w, errMaterializing())
		return
	}
	prof := svc.prog.Profile()
	analyze := r.URL.Query().Get("analyze") == "1"
	if analyze {
		prof.Annotate(st.model.Stats())
	} else {
		// Plain EXPLAIN: structure only, no measurements.
		for i := range prof.Rules {
			for j := range prof.Rules[i].Ops {
				op := &prof.Rules[i].Ops[j]
				op.In, op.Out, op.Probes, op.Build, op.Delta, op.Groups = 0, 0, 0, 0, 0, 0
			}
		}
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		prof.Render(w)
		return
	}
	writeJSONCtx(ctx, w, http.StatusOK, map[string]any{
		"program": svc.name,
		"version": st.version,
		"analyze": analyze,
		"profile": prof,
	})
}
