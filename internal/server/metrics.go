package server

import (
	"net/http"
	"sync/atomic"
	"time"
)

// metrics holds hand-rolled (stdlib-only) counters: one latency/error
// record per endpoint, updated with atomics so the read path stays
// lock-free. /metrics renders them as deterministic JSON — struct field
// order is fixed and program maps are emitted in sorted name order by
// encoding/json.
type metrics struct {
	endpoints map[string]*endpointStats
}

// endpointStats aggregates one endpoint's traffic.
type endpointStats struct {
	count    atomic.Int64
	errors   atomic.Int64
	sumNanos atomic.Int64
	maxNanos atomic.Int64
}

// metricEndpoints fixes the set of tracked endpoints (and their render
// order is the sorted key order of the JSON map).
var metricEndpoints = []string{
	"/healthz", "/metrics", "/v1/assert", "/v1/explain", "/v1/program", "/v1/query",
}

func newMetrics() *metrics {
	m := &metrics{endpoints: map[string]*endpointStats{}}
	for _, e := range metricEndpoints {
		m.endpoints[e] = &endpointStats{}
	}
	return m
}

// observe records one request against its endpoint.
func (m *metrics) observe(endpoint string, status int, elapsed time.Duration) {
	es, ok := m.endpoints[endpoint]
	if !ok {
		return
	}
	es.count.Add(1)
	if status >= http.StatusBadRequest {
		es.errors.Add(1)
	}
	n := elapsed.Nanoseconds()
	es.sumNanos.Add(n)
	for {
		old := es.maxNanos.Load()
		if n <= old || es.maxNanos.CompareAndSwap(old, n) {
			return
		}
	}
}

// endpointMetrics is the rendered form of one endpoint's stats.
type endpointMetrics struct {
	Count     int64   `json:"count"`
	Errors    int64   `json:"errors"`
	AvgMillis float64 `json:"avg_ms"`
	MaxMillis float64 `json:"max_ms"`
}

func (m *metrics) snapshot() map[string]endpointMetrics {
	out := make(map[string]endpointMetrics, len(m.endpoints))
	for name, es := range m.endpoints {
		count := es.count.Load()
		em := endpointMetrics{
			Count:     count,
			Errors:    es.errors.Load(),
			MaxMillis: float64(es.maxNanos.Load()) / 1e6,
		}
		if count > 0 {
			em.AvgMillis = float64(es.sumNanos.Load()) / float64(count) / 1e6
		}
		out[name] = em
	}
	return out
}
