package server

import (
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/datalog"
	"repro/internal/obs"
)

// latencyBuckets are the fixed histogram upper bounds (seconds) for
// request latencies: sub-millisecond point reads through multi-second
// assert solves.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// metricEndpoints is the known endpoint set, pre-registered so every
// series appears (at zero) from the first scrape. Requests outside this
// set — unknown paths, bad methods — are recorded under "other" rather
// than silently dropped.
var metricEndpoints = []string{
	"/debug/traces", "/healthz", "/metrics", "/readyz",
	"/v1/assert", "/v1/explain", "/v1/explain/plan", "/v1/program", "/v1/query", "/v1/stats",
}

// commitBatchBuckets are the histogram upper bounds for batches per
// group-commit drain: 1 means no coalescing; anything above it is the
// write path absorbing concurrency.
var commitBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// fsyncBuckets are the histogram upper bounds (seconds) for WAL fsync
// latency: a healthy local disk sits well under a millisecond; the top
// buckets catch stalling devices.
var fsyncBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5}

// otherEndpoint aggregates traffic on unknown paths (404s and method
// mismatches), so scans and misconfigured clients stay visible.
const otherEndpoint = "other"

// metrics is the server's instrumentation: an obs.Registry rendered in
// the Prometheus text format at /metrics, plus a parallel per-endpoint
// JSON view (the pre-registry wire shape, kept for Accept:
// application/json clients). All updates are atomic; the hot path never
// takes a lock after construction.
type metrics struct {
	reg *obs.Registry

	// httpRequests counts requests by endpoint and status code;
	// httpDuration is the per-endpoint latency histogram.
	httpRequests *obs.CounterVec
	httpDuration *obs.HistogramVec
	// assertOutcomes counts /v1/assert results by program and outcome
	// ("ok" or the structured error code: parse, budget, diverged, …).
	assertOutcomes *obs.CounterVec
	// shed counts admission-control rejections by endpoint and reason
	// (queue_full, draining, overloaded) — load the server refused
	// rather than queued.
	shed *obs.CounterVec
	// queueDepth is the current commit-queue depth by program;
	// commitBatch the batches-per-drain histogram (values above 1 are
	// group commit absorbing concurrent writers); commitIsolated counts
	// batches re-committed alone after a failed merged solve.
	queueDepth     *obs.GaugeVec
	commitBatch    *obs.HistogramVec
	commitIsolated *obs.CounterVec
	// commitSeq is the last committed batch's sequence number by
	// program — the durable ack watermark clients reconcile against.
	commitSeq *obs.GaugeVec
	// WAL instrumentation: fsync latency, bytes appended, on-disk
	// segment count, and batches replayed during warm starts.
	walFsync    *obs.HistogramVec
	walBytes    *obs.CounterVec
	walSegments *obs.GaugeVec
	walReplayed *obs.CounterVec
	// Per-program model gauges, updated when a new model generation is
	// published (materialize or a successful assert).
	modelSize    *obs.GaugeVec
	modelVersion *obs.GaugeVec
	// Per-program engine gauges, fed from the engine's event stream:
	// cumulative rounds/firings/derived of the published model chain,
	// plus the live parallel-scheduler worker count (0 between solves
	// and for sequential runs).
	engineRounds  *obs.GaugeVec
	engineFirings *obs.GaugeVec
	engineDerived *obs.GaugeVec
	engineWorkers *obs.GaugeVec

	// endpoints is the JSON view; fixed at construction (known set plus
	// "other"), so observe reads it without locking.
	endpoints map[string]*endpointStats
}

// endpointStats aggregates one endpoint's traffic for the JSON view
// (plain atomics kept out of the registry: avg/max have no Prometheus
// type — the histograms cover them there).
type endpointStats struct {
	count    atomic.Int64
	errors   atomic.Int64
	sumNanos atomic.Int64
	maxNanos atomic.Int64
	// lastTrace is the most recent request's trace id — the exemplar
	// linking the latency numbers to a flight-recorder trace. (The text
	// exposition format stays exemplar-free: obs.Registry renders plain
	// 0.0.4 text, so the exemplar lives in the JSON view and on
	// slow-request log lines instead.)
	lastTrace atomic.Value // string
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg: reg,
		httpRequests: reg.NewCounterVec("mdl_http_requests_total",
			"Requests served, by endpoint and HTTP status code.", "endpoint", "code"),
		httpDuration: reg.NewHistogramVec("mdl_http_request_duration_seconds",
			"Request latency in seconds, by endpoint.", latencyBuckets, "endpoint"),
		assertOutcomes: reg.NewCounterVec("mdl_assert_outcomes_total",
			"Assert batches, by program and outcome (ok or error kind).", "program", "outcome"),
		shed: reg.NewCounterVec("mdl_shed_total",
			"Requests rejected by admission control, by endpoint and reason.", "endpoint", "reason"),
		queueDepth: reg.NewGaugeVec("mdl_assert_queue_depth",
			"Assert batches currently queued for group commit, by program.", "program"),
		commitBatch: reg.NewHistogramVec("mdl_commit_batch_size",
			"Assert batches coalesced per group-commit drain, by program.", commitBatchBuckets, "program"),
		commitIsolated: reg.NewCounterVec("mdl_commit_isolated_total",
			"Batches re-committed alone after a failed merged solve, by program.", "program"),
		commitSeq: reg.NewGaugeVec("mdl_commit_seq",
			"Sequence number of the last committed assert batch, by program.", "program"),
		walFsync: reg.NewHistogramVec("mdl_wal_fsync_seconds",
			"Write-ahead log fsync latency in seconds, by program.", fsyncBuckets, "program"),
		walBytes: reg.NewCounterVec("mdl_wal_bytes_total",
			"Bytes appended to the write-ahead log, by program.", "program"),
		walSegments: reg.NewGaugeVec("mdl_wal_segments",
			"On-disk write-ahead log segment files, by program.", "program"),
		walReplayed: reg.NewCounterVec("mdl_wal_replayed_batches_total",
			"Assert batches replayed from the write-ahead log at warm start, by program.", "program"),
		modelSize: reg.NewGaugeVec("mdl_program_model_size",
			"Stored tuples in the published model, by program.", "program"),
		modelVersion: reg.NewGaugeVec("mdl_program_model_version",
			"Published model generation (1 = initial materialization), by program.", "program"),
		engineRounds: reg.NewGaugeVec("mdl_engine_rounds",
			"Cumulative fixpoint rounds behind the published model, by program.", "program"),
		engineFirings: reg.NewGaugeVec("mdl_engine_firings",
			"Cumulative rule firings behind the published model, by program.", "program"),
		engineDerived: reg.NewGaugeVec("mdl_engine_derived",
			"Cumulative derivations behind the published model, by program.", "program"),
		engineWorkers: reg.NewGaugeVec("mdl_engine_active_workers",
			"Components being evaluated concurrently right now, by program (0 when idle or sequential).", "program"),
		endpoints: map[string]*endpointStats{},
	}
	reg.NewGaugeVec("mdl_build_info",
		"Build information; the value is always 1.", "go_version").
		With(runtime.Version()).Set(1)
	for _, e := range append(append([]string(nil), metricEndpoints...), otherEndpoint) {
		m.endpoints[e] = &endpointStats{}
		m.httpDuration.With(e)
	}
	return m
}

// endpointLabel normalizes a request path to a known endpoint label,
// mapping everything else to "other".
func (m *metrics) endpointLabel(path string) string {
	if _, ok := m.endpoints[path]; ok && path != otherEndpoint {
		return path
	}
	return otherEndpoint
}

// observe records one request. endpoint must come from endpointLabel;
// traceID (empty when untraced) becomes the endpoint's latency
// exemplar.
func (m *metrics) observe(endpoint string, status int, elapsed time.Duration, traceID string) {
	m.httpRequests.With(endpoint, strconv.Itoa(status)).Inc()
	m.httpDuration.With(endpoint).Observe(elapsed.Seconds())

	es := m.endpoints[endpoint]
	if traceID != "" {
		es.lastTrace.Store(traceID)
	}
	es.count.Add(1)
	if status >= http.StatusBadRequest {
		es.errors.Add(1)
	}
	n := elapsed.Nanoseconds()
	es.sumNanos.Add(n)
	for {
		old := es.maxNanos.Load()
		if n <= old || es.maxNanos.CompareAndSwap(old, n) {
			return
		}
	}
}

// assertOutcome records one /v1/assert result ("ok" or the structured
// error code).
func (m *metrics) assertOutcome(program, outcome string) {
	if program == "" {
		program = "unknown"
	}
	m.assertOutcomes.With(program, outcome).Inc()
}

// publishModel updates the per-program model gauges for a newly
// published generation.
func (m *metrics) publishModel(program string, version uint64, size int) {
	m.modelSize.With(program).Set(float64(size))
	m.modelVersion.With(program).Set(float64(version))
}

// programSink returns the event sink that feeds one program's engine
// gauges. It is chained in front of any user-configured sink at load
// time, and runs on the solving goroutine (the single-writer path), so
// gauge stores are the only synchronization needed.
func (m *metrics) programSink(program string) datalog.EventSink {
	rounds := m.engineRounds.With(program)
	firings := m.engineFirings.With(program)
	derived := m.engineDerived.With(program)
	workers := m.engineWorkers.With(program)
	return datalog.SinkFunc(func(e datalog.Event) {
		switch e.Kind {
		case datalog.EventRoundEnd:
			rounds.Add(1)
			firings.Add(float64(e.Firings))
			derived.Add(float64(e.Derived))
		case datalog.EventComponentBegin, datalog.EventComponentEnd:
			// Parallel-scheduler events carry the live worker count;
			// sequential solves leave it at 0. The engine serializes
			// sink calls, so Set sees a consistent gauge.
			workers.Set(float64(e.Workers))
		case datalog.EventSolveEnd:
			// SolveEnd carries the authoritative cumulative totals
			// (seeded across warm starts and assert chains); snap the
			// gauges to them so restarts don't under-report.
			rounds.Set(float64(e.Round))
			firings.Set(float64(e.Firings))
			derived.Set(float64(e.Derived))
			workers.Set(0)
		}
	})
}

// endpointMetrics is the rendered JSON form of one endpoint's stats.
type endpointMetrics struct {
	Count     int64   `json:"count"`
	Errors    int64   `json:"errors"`
	AvgMillis float64 `json:"avg_ms"`
	MaxMillis float64 `json:"max_ms"`
	// LastTraceID is the latency exemplar: the trace id of the most
	// recent request, resolvable against /debug/traces.
	LastTraceID string `json:"last_trace_id,omitempty"`
}

func (m *metrics) snapshot() map[string]endpointMetrics {
	out := make(map[string]endpointMetrics, len(m.endpoints))
	for name, es := range m.endpoints {
		count := es.count.Load()
		em := endpointMetrics{
			Count:     count,
			Errors:    es.errors.Load(),
			MaxMillis: float64(es.maxNanos.Load()) / 1e6,
		}
		if tid, ok := es.lastTrace.Load().(string); ok {
			em.LastTraceID = tid
		}
		if count > 0 {
			em.AvgMillis = float64(es.sumNanos.Load()) / float64(count) / 1e6
		}
		out[name] = em
	}
	return out
}
