package server

import (
	"errors"
	"net/http"

	"repro/datalog"
)

// apiError is the structured JSON error body. Status codes and ExitCode
// mirror the mdl CLI's exit-code contract (1 usage, 2 parse, 3 static,
// 4 evaluation, 5 checkpoint, 6 write-ahead log) so scripted clients
// can reuse the same classification whether they drive the binary or
// the service.
type apiError struct {
	// Code is a stable machine-readable class.
	Code string `json:"code"`
	// Message is the human-readable cause.
	Message string `json:"message"`
	// ExitCode is the CLI exit code the same failure would produce.
	ExitCode int `json:"exit_code"`
	// RetryAfter is the server's backoff hint in whole seconds, echoed
	// in the Retry-After header; every 429/503 carries one (see the
	// client retry contract in docs/SERVER.md).
	RetryAfter int `json:"retry_after,omitempty"`
	// status is the HTTP status (not serialized; carried alongside).
	status int
}

// The error classes of the API surface.
func errUsage(msg string) *apiError {
	return &apiError{Code: "usage", Message: msg, ExitCode: 1, status: http.StatusBadRequest}
}

func errNotFound(msg string) *apiError {
	return &apiError{Code: "not_found", Message: msg, ExitCode: 1, status: http.StatusNotFound}
}

func errMaterializing() *apiError {
	return &apiError{Code: "materializing", Message: "model not materialized yet", ExitCode: 4, status: http.StatusServiceUnavailable}
}

// The admission-control error classes: the server is healthy but
// refuses the work right now. Clients retry after the hinted backoff.
func errQueueFullShed(retryAfter int) *apiError {
	return &apiError{
		Code: "shed", Message: "assert queue full; retry with backoff",
		ExitCode: 4, RetryAfter: retryAfter, status: http.StatusTooManyRequests,
	}
}

func errDrainingShed() *apiError {
	return &apiError{
		Code: "draining", Message: "server is draining; retry against the restarted instance",
		ExitCode: 4, RetryAfter: 1, status: http.StatusServiceUnavailable,
	}
}

func errOverloaded(retryAfter int) *apiError {
	return &apiError{
		Code: "overloaded", Message: "read concurrency limit reached; retry with backoff",
		ExitCode: 4, RetryAfter: retryAfter, status: http.StatusServiceUnavailable,
	}
}

// classifySolveError maps an evaluation failure from the datalog facade
// onto the API error surface:
//
//	bad fact values (cost missing, unparsable)  -> 400 "parse"    (exit 2)
//	non-monotone addition rejected              -> 409 "static"   (exit 3)
//	canceled / deadline                         -> 503 "canceled" (exit 4)
//	derivation budget exceeded                  -> 422 "budget"   (exit 4)
//	divergence (ω-limit)                        -> 422 "diverged" (exit 4)
//	contained engine panic                      -> 500 "internal" (exit 4)
//	checkpoint write                            -> 500 "checkpoint" (exit 5)
//	write-ahead log append/fsync                -> 500 "wal"      (exit 6)
func classifySolveError(err error) *apiError {
	switch {
	case errors.Is(err, errWALFailed):
		return &apiError{Code: "wal", Message: err.Error(), ExitCode: 6, status: http.StatusInternalServerError}
	case errors.Is(err, datalog.ErrCanceled):
		return &apiError{Code: "canceled", Message: err.Error(), ExitCode: 4, status: http.StatusServiceUnavailable}
	case errors.Is(err, datalog.ErrBudgetExceeded):
		return &apiError{Code: "budget", Message: err.Error(), ExitCode: 4, status: http.StatusUnprocessableEntity}
	case errors.Is(err, datalog.ErrDiverged):
		return &apiError{Code: "diverged", Message: err.Error(), ExitCode: 4, status: http.StatusUnprocessableEntity}
	case errors.Is(err, datalog.ErrInternal):
		return &apiError{Code: "internal", Message: err.Error(), ExitCode: 4, status: http.StatusInternalServerError}
	case errors.Is(err, datalog.ErrCheckpoint):
		return &apiError{Code: "checkpoint", Message: err.Error(), ExitCode: 5, status: http.StatusInternalServerError}
	default:
		// The remaining facade failures are rejected inputs: facts for
		// derived predicates, predicates read under negation or inside a
		// non-monotone aggregate (the static soundness conditions of
		// SolveMore), or malformed fact values.
		return &apiError{Code: "static", Message: err.Error(), ExitCode: 3, status: http.StatusConflict}
	}
}
