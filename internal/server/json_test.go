package server

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/datalog"
)

func encodeToString(v datalog.Value) string {
	var b bytes.Buffer
	encodeValue(&b, v)
	return b.String()
}

func TestEncodeValueAllKinds(t *testing.T) {
	cases := []struct {
		v    datalog.Value
		want string
	}{
		{datalog.Sym("a"), `"a"`},
		{datalog.Sym(`we"ird`), `"we\"ird"`},
		{datalog.Num(3.5), `3.5`},
		{datalog.Num(4), `4`},
		{datalog.Num(math.Inf(1)), `{"num":"inf"}`},
		{datalog.Num(math.Inf(-1)), `{"num":"-inf"}`},
		{datalog.Bool(true), `true`},
		{datalog.Bool(false), `false`},
		{datalog.Str("x"), `{"str":"x"}`},
		{datalog.SetOf(), `{"set":[]}`},
		// Canonical element order, regardless of construction order.
		{datalog.SetOf(datalog.Sym("b"), datalog.Sym("a")), `{"set":["a","b"]}`},
		// Nested sets encode recursively.
		{datalog.SetOf(datalog.SetOf(datalog.Num(1)), datalog.Num(2)), `{"set":[{"set":[1]},2]}`},
	}
	for _, c := range cases {
		if got := encodeToString(c.v); got != c.want {
			t.Errorf("encode(%s) = %s, want %s", c.v, got, c.want)
		}
	}
}

// TestValueRoundTrip decodes every encoding back to an equal value.
func TestValueRoundTrip(t *testing.T) {
	values := []datalog.Value{
		datalog.Sym("a"),
		datalog.Num(3.5),
		datalog.Num(math.Inf(1)),
		datalog.Num(math.Inf(-1)),
		datalog.Bool(true),
		datalog.Str("x"),
		datalog.Str(""),
		datalog.SetOf(datalog.Sym("a"), datalog.Num(1), datalog.Str("s")),
		datalog.SetOf(datalog.SetOf(datalog.Sym("a")), datalog.SetOf()),
	}
	for _, v := range values {
		enc := encodeToString(v)
		got, err := decodeValue(json.RawMessage(enc), false)
		if err != nil {
			t.Errorf("decode(%s): %v", enc, err)
			continue
		}
		if !got.Equal(v) {
			t.Errorf("round trip %s -> %s -> %s", v, enc, got)
		}
		// Determinism: re-encoding the decoded value is byte-identical.
		if re := encodeToString(got); re != enc {
			t.Errorf("re-encode %s differs: %s", enc, re)
		}
	}
}

func TestDecodeValueForms(t *testing.T) {
	// Accepted alternative spellings.
	okCases := []struct {
		in   string
		want datalog.Value
	}{
		{`{"num":7}`, datalog.Num(7)},       // numeric object form
		{`{"num":"7.5"}`, datalog.Num(7.5)}, // stringified number
		{`{"bool":true}`, datalog.Bool(true)},
		{`  "a" `, datalog.Sym("a")}, // surrounding whitespace
	}
	for _, c := range okCases {
		got, err := decodeValue(json.RawMessage(c.in), false)
		if err != nil || !got.Equal(c.want) {
			t.Errorf("decode(%s) = %v, %v; want %s", c.in, got, err, c.want)
		}
	}

	// Wildcards decode only where patterns are allowed.
	if v, err := decodeValue(json.RawMessage(`null`), true); err != nil || v.Kind() != datalog.AnyValue {
		t.Errorf("null with allowWild: %v, %v", v, err)
	}
	if _, err := decodeValue(json.RawMessage(`null`), false); err == nil {
		t.Error("null without allowWild must fail")
	}

	// Rejected forms.
	badCases := []string{
		``, `[1,2]`, `{"str":1}`, `{"num":"abc"}`, `{"set":{}}`,
		`{"frob":1}`, `{"str":"a","num":"1"}`, `{}`, `nul`, `tru`, `12x`,
		`{"set":[null]}`, // wildcard inside a set literal
	}
	for _, in := range badCases {
		if v, err := decodeValue(json.RawMessage(in), true); err == nil {
			t.Errorf("decode(%s) = %v, want error", in, v)
		}
	}
}

func TestJSONRowsShape(t *testing.T) {
	rows := jsonRows{
		{datalog.Sym("a"), datalog.Num(1)},
		{datalog.Sym("b"), datalog.SetOf(datalog.Sym("x"))},
	}
	b, err := json.Marshal(map[string]any{"rows": rows})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"rows":[["a",1],["b",{"set":["x"]}]]}`
	if string(b) != want {
		t.Fatalf("rows JSON %s, want %s", b, want)
	}
	if b, _ := json.Marshal(jsonRows{}); string(b) != `[]` {
		t.Fatalf("empty rows must be [], got %s", b)
	}
}

func TestDecodeArgsErrorsNamePosition(t *testing.T) {
	_, err := decodeArgs([]json.RawMessage{
		json.RawMessage(`"a"`), json.RawMessage(`[]`),
	}, false)
	if err == nil || !strings.Contains(err.Error(), "args[1]") {
		t.Fatalf("error must name the argument position: %v", err)
	}
}
