package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/datalog"
	"repro/internal/faults"
)

// TestParallelEngineServeStress drives the server with the parallel
// engine explicitly enabled: concurrent HTTP readers (queries, explain,
// metrics scrapes) race against an assert writer while every solve runs
// on the multi-worker scheduler. Run with -race (the Makefile race
// target does); any unsynchronized state shared between scheduler
// workers and the lock-free read path surfaces here.
func TestParallelEngineServeStress(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t, []ProgramSpec{{
		Name: "sp", Source: src,
		Options: datalog.Options{Trace: true, Parallelism: 4},
	}}, Config{})

	const readers = 6
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r % 3 {
				case 0:
					if code, resp := post(t, ts.URL+"/v1/query", `{"op":"facts","pred":"s"}`); code != 200 {
						t.Errorf("query: %d %v", code, resp)
						return
					}
				case 1:
					if code, resp := post(t, ts.URL+"/v1/explain", `{"pred":"s","args":["a","d"]}`); code != 200 {
						t.Errorf("explain: %d %v", code, resp)
						return
					}
				case 2:
					if code, body, _ := getText(t, ts.URL+"/metrics"); code != 200 ||
						!strings.Contains(body, "mdl_engine_active_workers") {
						t.Errorf("metrics scrape missing worker gauge")
						return
					}
				}
			}
		}(r)
	}

	for i := 0; i < 12; i++ {
		body := fmt.Sprintf(`{"facts":[{"pred":"arc","args":["p%d","p%d",1]}]}`, i, i+1)
		if code, resp := post(t, ts.URL+"/v1/assert", body); code != 200 {
			t.Fatalf("assert %d: %d %v", i, code, resp)
		}
	}
	close(stop)
	wg.Wait()

	// The parallel engine must have produced exactly the model the
	// sequential engine would: spot-check a known shortest path.
	code, resp := post(t, ts.URL+"/v1/query", `{"op":"cost","pred":"s","args":["a","d"]}`)
	if code != 200 || resp["cost"] != 4.0 {
		t.Fatalf("s(a, d) = %v (code %d), want cost 4", resp, code)
	}
}

// TestWorkerPanicNoPartialPublish: a worker crash during parallel
// materialization must fail Materialize with the structured ErrInternal
// and must not publish any model — readers can never observe a
// half-evaluated interpretation.
func TestWorkerPanicNoPartialPublish(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	s, err := New([]ProgramSpec{{
		Name: "sp", Source: src,
		Options: datalog.Options{Parallelism: 4},
	}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm(faults.Fault{Point: faults.CoreParallelWorker, Panic: true, Sticky: true})
	defer faults.Reset()
	if err := s.Materialize(context.Background()); !errors.Is(err, datalog.ErrInternal) {
		t.Fatalf("materialize err = %v, want ErrInternal", err)
	}
	if st := s.svcs["sp"].cur.Load(); st != nil {
		t.Fatalf("partial model published after worker crash: version %d", st.version)
	}
}
