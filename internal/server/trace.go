package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// Request tracing plumbing: every request gets a Trace (continuing the
// W3C traceparent header when the caller sent one), carried through the
// request context so the assert path can attribute commit phases —
// admission, queue wait, solve, WAL append/fsync, publish — to the
// requests that paid for them. Finished traces land in the server's
// flight recorder (dumped at /debug/traces) and, when Config.TraceDir
// is set, as one Chrome trace-event JSON file per trace.

// traceCtxKey carries the per-request trace state.
type traceCtxKey struct{}

// requestTrace is the per-request trace state handlers read from the
// context.
type requestTrace struct {
	tr    *obs.Trace
	reqID string
}

func withTrace(ctx context.Context, rt *requestTrace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, rt)
}

// traceFrom returns the request's trace state, or nil outside the
// instrumented handler chain (direct handler tests).
func traceFrom(ctx context.Context) *requestTrace {
	rt, _ := ctx.Value(traceCtxKey{}).(*requestTrace)
	return rt
}

// saveTrace writes one finished trace as a Chrome trace-event file
// under dir, named by its trace ID so concurrent writers never collide.
func saveTrace(dir string, rec obs.TraceRecord) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("trace-%s.json", rec.TraceID))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, []obs.TraceRecord{rec}); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
