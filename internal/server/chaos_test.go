package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/datalog"
	"repro/internal/faults"
)

// The chaos suite: mixed query/assert/kill traffic against the serve
// tier with armed fault points (writer stall, slow solve, failed swap,
// checkpoint-flush errors mid-drain), run under -race by `make
// chaos-test`. The invariants it defends:
//
//   - no lost acks: every batch that enters the commit queue receives
//     exactly one definite outcome, through stalls, failures and drain
//     deadlines;
//   - no partial models: readers only ever observe fully converged
//     generations, and a failed commit (including a failed swap)
//     leaves the published model untouched;
//   - clean drain: shutdown answers everything queued, flushes the
//     checkpoint, and a warm restart equals a one-shot solve.

// TestChaosMixedTrafficNoLostAcksNoPartialModels hammers a server with
// concurrent reads and writes while the committer is repeatedly
// stalled and slowed, then drains mid-traffic. Every acked fact must
// be in the final model, every read must see a converged generation,
// and the drained model must equal a one-shot solve over the acked
// facts.
func TestChaosMixedTrafficNoLostAcksNoPartialModels(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	src := loadExample(t, "shortestpath.mdl")
	ckpt := filepath.Join(t.TempDir(), "sp.ckpt")
	s, err := New([]ProgramSpec{{Name: "sp", Source: src, Checkpoint: ckpt}},
		Config{RequestTimeout: 5 * time.Second, AssertQueue: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	url := newTestHTTP(t, s)

	// Every third drain stalls briefly: batches pile up and coalesce.
	faults.Arm(faults.Fault{Point: faults.ServerCommitStall, Delay: 20 * time.Millisecond, Sticky: true, After: 3})

	const writers, readers = 8, 4
	const batchesPerWriter = 10
	var wg, rwg sync.WaitGroup
	var mu sync.Mutex
	acked := map[string]bool{} // "i-j" -> acked by a 200
	shed := 0
	client := &http.Client{Timeout: 10 * time.Second}

	stopReads := make(chan struct{})
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			lastVersion, lastCount := 0.0, 0.0
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				resp, err := client.Post(url+"/v1/query", "application/json",
					strings.NewReader(`{"op":"facts","pred":"arc"}`))
				if err != nil {
					t.Error(err)
					return
				}
				var out map[string]any
				_ = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("read failed mid-chaos: %d %v", resp.StatusCode, out)
					return
				}
				v, c := out["version"].(float64), out["count"].(float64)
				// Generations are monotone: a later version never has
				// fewer arcs (no partial or regressed model published).
				if v < lastVersion || (v == lastVersion && c != lastCount) || (v > lastVersion && c < lastCount) {
					t.Errorf("torn or regressed read: version %v count %v after version %v count %v", v, c, lastVersion, lastCount)
					return
				}
				lastVersion, lastCount = v, c
			}
		}()
	}

	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < batchesPerWriter; j++ {
				key := fmt.Sprintf("%d-%d", i, j)
				body := fmt.Sprintf(`{"facts":[{"pred":"arc","args":["w%d","x%s",1]}]}`, i, key)
				resp, err := client.Post(url+"/v1/assert", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				var out map[string]any
				_ = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					acked[key] = true
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					shed++
				default:
					t.Errorf("assert %s: unexpected status %d: %v", key, resp.StatusCode, out)
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	close(stopReads)
	rwg.Wait()

	// Drain cleanly and flush the checkpoint.
	if !s.Drain(10 * time.Second) {
		t.Fatal("drain hit its deadline in a test with no stuck solves")
	}
	if err := s.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}

	// Every acked fact is in the final model (no lost acks).
	st := s.svcs["sp"].current()
	mu.Lock()
	ackedKeys := make([]string, 0, len(acked))
	for key := range acked {
		ackedKeys = append(ackedKeys, key)
	}
	mu.Unlock()
	if len(ackedKeys) == 0 {
		t.Fatal("chaos run acked nothing; the test exercised nothing")
	}
	for _, key := range ackedKeys {
		var i int
		fmt.Sscanf(key, "%d-", &i)
		if !st.model.Has("arc", datalog.Sym(fmt.Sprintf("w%d", i)), datalog.Sym("x"+key)) {
			t.Fatalf("acked fact arc(w%d, x%s) missing from drained model", i, key)
		}
	}

	// The drained model equals a one-shot solve over seed + acked facts
	// (group commit and chaos changed nothing semantically), and the
	// flushed checkpoint warm-restarts to that same model.
	prog, err := datalog.Load(src, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var facts []datalog.Fact
	for _, key := range ackedKeys {
		var i int
		fmt.Sscanf(key, "%d-", &i)
		facts = append(facts, datalog.NewFact("arc", datalog.Sym(fmt.Sprintf("w%d", i)), datalog.Sym("x"+key), datalog.Num(1)))
	}
	oneShot, _, err := prog.SolveContext(context.Background(), facts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.model.String(), oneShot.String(); got != want {
		t.Fatalf("drained model differs from one-shot solve:\nserved:\n%s\none-shot:\n%s", got, want)
	}

	s2, err := New([]ProgramSpec{{Name: "sp", Source: src, Checkpoint: ckpt}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	st2 := s2.svcs["sp"].current()
	if !st2.warm {
		t.Fatal("restart did not warm-start from the flushed checkpoint")
	}
	if got, want := st2.model.String(), oneShot.String(); got != want {
		t.Fatalf("warm-restarted model differs from one-shot solve:\nrestarted:\n%s\none-shot:\n%s", got, want)
	}
	t.Logf("chaos: %d acked, %d shed, final version %d", len(ackedKeys), shed, st.version)
}

// TestChaosFailedSwapPublishesNothing arms the publish fault: the
// commit's solve converges but the swap fails. The published model must
// be byte-identical to before, the client gets a definite 5xx, and the
// next commit works.
func TestChaosFailedSwapPublishesNothing(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	src := loadExample(t, "shortestpath.mdl")
	s, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src}}, Config{})
	svc := s.svcs["sp"]
	before := svc.current()
	beforeText := before.model.String()

	faults.Arm(faults.Fault{Point: faults.ServerCommitPublish, Err: errors.New("swap lost the race to a crash")})
	resp := postRaw(t, ts.URL+"/v1/assert", `{"facts":[{"pred":"arc","args":["d","e",1]}]}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed swap returned %d, want 500", resp.StatusCode)
	}

	after := svc.current()
	if after != before {
		t.Fatal("failed swap replaced the published model state")
	}
	if after.model.String() != beforeText {
		t.Fatal("failed swap mutated the published model")
	}

	// The write path recovers: the same batch commits once disarmed.
	code, out := post(t, ts.URL+"/v1/assert", `{"facts":[{"pred":"arc","args":["d","e",1]}]}`)
	if code != http.StatusOK || out["version"] != 2.0 {
		t.Fatalf("post-fault assert: %d %v", code, out)
	}
}

// TestChaosDrainDeadlineStillAcksEverything wedges the committer with
// a long injected solve stall, queues batches behind it, and drains
// with a short deadline: Drain must cancel the stuck solve, answer
// every queued batch, and return false — nothing hangs, nothing is
// silently dropped.
func TestChaosDrainDeadlineStillAcksEverything(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	src := loadExample(t, "shortestpath.mdl")
	s, err := New([]ProgramSpec{{Name: "sp", Source: src}}, Config{AssertQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	svc := s.svcs["sp"]

	// Every drain stalls for a minute — far past the drain deadline.
	faults.Arm(faults.Fault{Point: faults.ServerCommitSolve, Delay: time.Minute, Sticky: true})

	const queued = 5
	reqs := make([]*commitReq, queued)
	for i := range reqs {
		reqs[i] = &commitReq{
			facts: []datalog.Fact{datalog.NewFact("arc", datalog.Sym(fmt.Sprintf("q%d", i)), datalog.Sym("z"), datalog.Num(1))},
			done:  make(chan commitResult, 1),
		}
		if err := svc.enqueue(reqs[i]); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}

	start := time.Now()
	if clean := s.Drain(200 * time.Millisecond); clean {
		t.Fatal("drain reported clean despite a wedged committer")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("drain took far longer than its deadline")
	}
	for i, req := range reqs {
		select {
		case res := <-req.done:
			if res.err == nil {
				t.Fatalf("batch %d reported success from a canceled drain", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("batch %d never received an outcome: ack lost", i)
		}
	}
	// Nothing was published by the canceled drain.
	if got := svc.current().version; got != 1 {
		t.Fatalf("canceled drain published version %d", got)
	}
}

// TestChaosCheckpointFlushErrorMidDrain drains with asserts still
// landing and a dying checkpoint sink: the drain itself must still ack
// everything, FlushCheckpoints must surface the error (exit code 5 at
// the CLI), and a healthy sink must succeed on retry.
func TestChaosCheckpointFlushErrorMidDrain(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	src := loadExample(t, "shortestpath.mdl")
	ckpt := filepath.Join(t.TempDir(), "sp.ckpt")
	s, err := New([]ProgramSpec{{Name: "sp", Source: src, Checkpoint: ckpt}},
		Config{AssertQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	url := newTestHTTP(t, s)

	// Slow each drain slightly so the drain overlaps queued work, then
	// make the checkpoint sink fail.
	faults.Arm(faults.Fault{Point: faults.ServerCommitStall, Delay: 20 * time.Millisecond, Sticky: true})
	faults.Arm(faults.Fault{Point: faults.SnapshotSinkWrite, Err: errors.New("volume gone"), Sticky: true})

	var wg sync.WaitGroup
	codes := make([]int, 6)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"facts":[{"pred":"arc","args":["c%d","d%d",1]}]}`, i, i)
			resp := postRaw(t, url+"/v1/assert", body)
			codes[i] = resp.StatusCode
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	go s.BeginDrain()
	wg.Wait()
	if !s.Drain(10 * time.Second) {
		t.Fatal("drain hit deadline")
	}
	for i, code := range codes {
		if code == 0 {
			t.Fatalf("assert %d never completed", i)
		}
	}

	if err := s.FlushCheckpoints(); err == nil {
		t.Fatal("FlushCheckpoints swallowed the sink failure")
	}
	faults.Disarm(faults.SnapshotSinkWrite)
	if err := s.FlushCheckpoints(); err != nil {
		t.Fatalf("flush after sink recovery: %v", err)
	}

	// The flushed checkpoint restores to exactly the drained model.
	s2, err := New([]ProgramSpec{{Name: "sp", Source: src, Resume: ckpt}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	if got, want := s2.svcs["sp"].current().model.String(), s.svcs["sp"].current().model.String(); got != want {
		t.Fatal("checkpoint flushed mid-drain does not restore the drained model")
	}
}
