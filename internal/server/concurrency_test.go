package server

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/datalog"
)

// TestConcurrentReadersWithWriter is the concurrency regression test:
// many readers hammer the lock-free read path (Has, Cost, Facts, Match,
// Size over the atomically published model) while one writer loops
// assert batches, each of which swaps in a freshly extended model. Run
// with -race (the Makefile race target does) to catch any mutation of a
// published model or unsynchronized access to shared engine state.
func TestConcurrentReadersWithWriter(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	s, err := New([]ProgramSpec{{Name: "sp", Source: src, Options: datalog.Options{Trace: true}}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	svc := s.svcs["sp"]

	const (
		readers       = 8
		writerBatches = 30
		readsPerLoop  = 200
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, readers+1)

	// Readers: snapshot the current model and read it every way the
	// query endpoints do. Each snapshot must be internally consistent —
	// a model observed at version v never loses tuples (monotonicity)
	// and never changes size while being read.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastVersion := uint64(0)
			lastSize := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < readsPerLoop; i++ {
					st := svc.current()
					size := st.model.Size()
					if st.version < lastVersion || (st.version == lastVersion && size != lastSize) {
						errc <- fmt.Errorf("non-monotonic observation: version %d size %d after version %d size %d",
							st.version, size, lastVersion, lastSize)
						return
					}
					lastVersion, lastSize = st.version, size
					st.model.Has("s", datalog.Sym("a"), datalog.Sym("d"))
					st.model.Cost("s", datalog.Sym("a"), datalog.Sym("d"))
					st.model.Facts("arc")
					st.model.Match("s", datalog.Sym("a"), datalog.Any())
					if size != st.model.Size() {
						errc <- fmt.Errorf("published model mutated under a reader (size changed mid-read)")
						return
					}
				}
			}
		}()
	}

	// Writer: extend the model one fresh edge at a time; every batch
	// converges and swaps atomically.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		prev := "d"
		for i := 0; i < writerBatches; i++ {
			node := fmt.Sprintf("n%d", i)
			res, _ := svc.solveAndPublish(context.Background(), []*commitReq{{facts: []datalog.Fact{
				datalog.NewFact("arc", datalog.Sym(prev), datalog.Sym(node), datalog.Num(1)),
			}}})
			if res.err != nil {
				errc <- fmt.Errorf("assert %d: %w", i, res.err)
				return
			}
			prev = node
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// After the writer is done the chain d -> n0 -> ... -> n29 exists, so
	// the final model answers s(a, n29) = 4 + 30.
	st := svc.current()
	if st.version != writerBatches+1 {
		t.Fatalf("final version %d, want %d", st.version, writerBatches+1)
	}
	last := fmt.Sprintf("n%d", writerBatches-1)
	cost, ok := st.model.Cost("s", datalog.Sym("a"), datalog.Sym(last))
	n, _ := cost.Float()
	if !ok || n != float64(4+writerBatches) {
		t.Fatalf("s(a, %s) = %v (%v), want %d", last, cost, ok, 4+writerBatches)
	}
}

// TestConcurrentHTTPReadsDuringAsserts drives the same interleaving
// through the HTTP API: readers must observe each generation atomically
// (the same version always reports the same fact count).
func TestConcurrentHTTPReadsDuringAsserts(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src}}, Config{})

	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var mu sync.Mutex
	countAt := map[float64]float64{} // version -> arc count observed

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, resp := post(t, ts.URL+"/v1/query", `{"op":"facts","pred":"arc"}`)
				if code != 200 {
					return
				}
				v, c := resp["version"].(float64), resp["count"].(float64)
				mu.Lock()
				if prev, ok := countAt[v]; ok && prev != c {
					mu.Unlock()
					t.Errorf("version %v reported %v and %v arcs: torn read", v, prev, c)
					return
				}
				countAt[v] = c
				mu.Unlock()
			}
		}()
	}

	for i := 0; i < 10; i++ {
		body := fmt.Sprintf(`{"facts":[{"pred":"arc","args":["m%d","m%d",1]}]}`, i, i+1)
		if code, resp := post(t, ts.URL+"/v1/assert", body); code != 200 {
			t.Fatalf("assert %d: %d %v", i, code, resp)
		}
	}
	close(stop)
	wg.Wait()

	// Versions increase by exactly one arc per assert batch.
	mu.Lock()
	defer mu.Unlock()
	for v, c := range countAt {
		if want := 5 + v - 1; c != want {
			t.Errorf("version %v saw %v arcs, want %v", v, c, want)
		}
	}
}
