package server

import (
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/datalog"
)

// TestWarmStartRoundTrip runs the full server lifecycle against a
// checkpoint: cold start, assert, flush on shutdown, then a second
// server over the same path warm-starts with the asserted facts intact.
func TestWarmStartRoundTrip(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	ckpt := filepath.Join(t.TempDir(), "sp.ckpt")
	spec := ProgramSpec{Name: "sp", Source: src, Checkpoint: ckpt}

	// Generation 1: the checkpoint file does not exist yet, so the solve
	// is cold; the path is opportunistic, not required.
	s1, ts1 := startServer(t, []ProgramSpec{spec}, Config{})
	code, resp := post(t, ts1.URL+"/v1/assert", `{"facts":[{"pred":"arc","args":["d","e",1]}]}`)
	if code != http.StatusOK {
		t.Fatalf("assert: %d %v", code, resp)
	}
	if err := s1.FlushCheckpoints(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Generation 2: a new server over the same spec warm-starts from the
	// snapshot and still knows the asserted edge.
	s2, ts2 := startServer(t, []ProgramSpec{spec}, Config{})
	svc := s2.svcs["sp"]
	if !svc.current().warm {
		t.Fatal("second start must warm-start from the checkpoint")
	}
	code, resp = post(t, ts2.URL+"/v1/query", `{"op":"cost","pred":"s","args":["a","e"]}`)
	if code != http.StatusOK || resp["cost"] != 5.0 {
		t.Fatalf("warm-started model must keep s(a, e) = 5: %d %v", code, resp)
	}

	// Explicit Resume refuses a missing snapshot instead of falling back
	// to a cold solve.
	missing := filepath.Join(t.TempDir(), "nope.ckpt")
	s3, err := New([]ProgramSpec{{Name: "sp", Source: src, Resume: missing}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.Materialize(context.Background()); err == nil {
		t.Fatal("-resume with a missing snapshot must fail materialization")
	}

	// A checkpoint written by a different program is rejected by the
	// fingerprint check, never silently reused.
	s4, err := New([]ProgramSpec{{Name: "other", Source: ".cost w/2 : minreal.\n", Resume: ckpt}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	err = s4.Materialize(context.Background())
	if !errors.Is(err, datalog.ErrFingerprintMismatch) {
		t.Fatalf("foreign checkpoint must fail the fingerprint check, got %v", err)
	}
}
