package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"repro/datalog"
	"repro/internal/faults"
	"repro/internal/wal"
)

// Durability: the serve tier's write-ahead log.
//
// Without a WAL, an acked /v1/assert lives only in memory until the
// next checkpoint flush — a crash forgets it. With Config.WALDir set,
// every committed batch is appended to a per-program log (one record
// per batch, carrying the batch's commit sequence number) and fsynced
// per the configured policy BEFORE the new model generation is
// published or any waiter is acked. A warm start then restores the
// newest checkpoint and replays the records past its watermark, so the
// recovered model is exactly the least model of the EDB the acked
// batches built — monotonicity of T_P makes replay grouping and
// ordering irrelevant, which is why a single merged solve over all
// replayed facts is sound (Ross & Sagiv).
//
// Failure posture: a WAL append or fsync error fails the batch with
// 500 (the published model is untouched), marks the service's log
// broken, and trips /readyz — after a failed write the segment tail
// state is unknown, so continuing to append could ack batches the log
// cannot replay. The process keeps serving reads; writes fail fast
// until a restart recovers the log.

// FsyncPolicy says when the WAL is fsynced relative to acks.
type FsyncPolicy string

const (
	// FsyncAlways syncs after every record append.
	FsyncAlways FsyncPolicy = "always"
	// FsyncBatch syncs once per group-commit drain, before any batch in
	// the group is acked — the same acked⇒durable guarantee as always,
	// amortized over the group. The default.
	FsyncBatch FsyncPolicy = "batch"
	// FsyncNone never syncs explicitly; acked batches since the OS last
	// flushed may be lost on power cut (not on process crash).
	FsyncNone FsyncPolicy = "none"
)

// ParseFsyncPolicy validates a policy string ("" selects batch).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case "":
		return FsyncBatch, nil
	case FsyncAlways, FsyncBatch, FsyncNone:
		return FsyncPolicy(s), nil
	}
	return "", fmt.Errorf("unknown fsync policy %q (want always, batch or none)", s)
}

// errWALFailed classifies write-ahead log failures on the commit path;
// the API surfaces them as 500 "wal" (exit code 6).
var errWALFailed = errors.New("server: write-ahead log failed")

// walFsyncPolicy resolves the configured fsync policy ("" = batch).
func (s *Server) walFsyncPolicy() FsyncPolicy {
	if s.cfg.WALFsync == "" {
		return FsyncBatch
	}
	return s.cfg.WALFsync
}

// openWAL opens (or creates) the service's log under Config.WALDir and
// cross-checks it against the checkpoint watermark the model was
// restored at.
func (svc *service) openWAL(watermark uint64) error {
	l, err := wal.Open(wal.Options{
		Dir:          filepath.Join(svc.srv.cfg.WALDir, svc.name),
		Fingerprint:  svc.prog.Fingerprint(),
		StartSeq:     watermark,
		SegmentBytes: svc.srv.cfg.WALSegmentBytes,
	})
	if err != nil {
		return err
	}
	// The checkpoint and the log must agree on history. A log whose
	// oldest record starts past watermark+1 was compacted against a
	// newer checkpoint than the one restored: the acked batches in the
	// gap are gone, and replaying the rest would build the wrong EDB. A
	// log that ends before the watermark is stale (the checkpoint
	// subsumes batches the log never saw) — likely a crossed directory.
	if first := l.FirstSeq(); first > watermark+1 {
		l.Close()
		return fmt.Errorf("%w: log starts at seq %d but the checkpoint watermark is %d: acked history is missing", wal.ErrCorrupt, first, watermark)
	}
	if last := l.LastSeq(); last < watermark {
		l.Close()
		return fmt.Errorf("%w: log ends at seq %d behind the checkpoint watermark %d", wal.ErrCorrupt, last, watermark)
	}
	if rep := l.Repaired(); rep != nil {
		svc.srv.logf("program %s: wal: repaired torn tail in %s: dropped %d bytes at offset %d (%s)",
			svc.name, rep.Segment, rep.Dropped, rep.Offset, rep.Reason)
	}
	svc.wal = l
	svc.srv.metrics.walSegments.With(svc.name).Set(float64(l.Segments()))
	return nil
}

// replayWAL applies every log record past the checkpoint watermark to
// m and returns the extended model and the number of batches replayed.
// All replayed facts flow through ONE merged solve: sound because EDB
// insertion is monotone and order-insensitive. Progress is published
// via the service's replay counters so /readyz can report it.
func (svc *service) replayWAL(ctx context.Context, m *datalog.Model, watermark uint64) (*datalog.Model, int, error) {
	last := svc.wal.LastSeq()
	if last <= watermark {
		return m, 0, nil
	}
	svc.replayTotal.Store(last - watermark)
	svc.replaying.Store(true)
	defer svc.replaying.Store(false)
	var facts []datalog.Fact
	batches := 0
	err := svc.wal.Replay(watermark, func(seq uint64, payload []byte) error {
		if err := faults.CheckCtx(ctx, faults.ServerWALReplay); err != nil {
			return err
		}
		fs, err := svc.decodeWALPayload(payload)
		if err != nil {
			return fmt.Errorf("%w: record %d: %v", wal.ErrCorrupt, seq, err)
		}
		facts = append(facts, fs...)
		batches++
		svc.replayDone.Add(1)
		svc.srv.metrics.walReplayed.With(svc.name).Add(1)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if len(facts) > 0 {
		if m, _, err = svc.prog.SolveMoreContext(ctx, m, facts); err != nil {
			return nil, 0, fmt.Errorf("replaying %d batches (%d facts): %w", batches, len(facts), err)
		}
	}
	return m, batches, nil
}

// walAppend logs one committed batch under seq and accounts the bytes;
// fsyncing is the caller's job (policy-dependent, see commit).
func (svc *service) walAppend(seq uint64, facts []datalog.Fact) error {
	n, err := svc.wal.Append(seq, encodeWALPayload(facts))
	if err != nil {
		return err
	}
	svc.srv.metrics.walBytes.With(svc.name).Add(int64(n))
	return nil
}

// walSync runs one policy-visible fsync and times it.
func (svc *service) walSync() error {
	start := time.Now()
	if err := svc.wal.Sync(); err != nil {
		return err
	}
	svc.srv.metrics.walFsync.With(svc.name).Observe(time.Since(start).Seconds())
	svc.srv.metrics.walSegments.With(svc.name).Set(float64(svc.wal.Segments()))
	return nil
}

// walFail marks the service's log broken (readiness trips, later
// writes fail fast) and wraps the failure for the API error surface.
func (svc *service) walFail(op string, err error) error {
	if !svc.walBroken.Swap(true) {
		svc.srv.logf("program %s: wal %s failed, write path disabled until restart: %v", svc.name, op, err)
	}
	return fmt.Errorf("%w: %s: %v", errWALFailed, op, err)
}

// The WAL record payload is the batch's facts in the server's
// deterministic JSON value encoding (see json.go):
//
//	[{"pred":"edge","args":[...]} , ...]
//
// Decoding reuses the /v1/assert validation path — declarations and
// arity checked against the load-time schema — so a replayed record is
// held to exactly the contract its original request passed.

// encodeWALPayload serializes one batch.
func encodeWALPayload(facts []datalog.Fact) []byte {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, f := range facts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"pred":`)
		name, _ := json.Marshal(f.Pred)
		b.Write(name)
		b.WriteString(`,"args":[`)
		for j, a := range f.Args {
			if j > 0 {
				b.WriteByte(',')
			}
			encodeValue(&b, a)
		}
		b.WriteString(`]}`)
	}
	b.WriteByte(']')
	return b.Bytes()
}

// decodeWALPayload parses one record back into validated facts.
func (svc *service) decodeWALPayload(payload []byte) ([]datalog.Fact, error) {
	var recs []struct {
		Pred string            `json:"pred"`
		Args []json.RawMessage `json:"args"`
	}
	if err := json.Unmarshal(payload, &recs); err != nil {
		return nil, fmt.Errorf("decoding payload: %v", err)
	}
	facts := make([]datalog.Fact, len(recs))
	for i, f := range recs {
		decl, ok := svc.decls[f.Pred]
		if !ok {
			return nil, fmt.Errorf("facts[%d]: program has no predicate %q", i, f.Pred)
		}
		if len(f.Args) != decl.Arity {
			return nil, fmt.Errorf("facts[%d]: %s takes %d arguments, got %d", i, f.Pred, decl.Arity, len(f.Args))
		}
		args, err := decodeArgs(f.Args, false)
		if err != nil {
			return nil, fmt.Errorf("facts[%d]: %v", i, err)
		}
		facts[i] = datalog.NewFact(f.Pred, args...)
	}
	return facts, nil
}
