package datalog

import (
	"strings"
	"testing"
)

const profileSrc = `
.cost arc/3  : minreal.
.cost path/4 : minreal.
.cost s/3    : minreal.

.ic :- arc(direct, Z, C).

path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).

arc(a, b, 1).
arc(b, c, 2).
arc(c, a, 1).
arc(a, d, 9).
arc(c, d, 1).
`

// TestProfileCounters pins EXPLAIN ANALYZE against a hand-checked
// example: the non-recursive projection rule scans the 5-row arc
// relation exactly once, so its single scan operator must report 5 rows
// out, 5 probes, and a build side of 5 — the relation's size.
func TestProfileCounters(t *testing.T) {
	p, err := Load(profileSrc, Options{Executor: ExecutorStream, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	m, st, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Profiling() {
		t.Fatal("Profiling() = false with Options.Profile set")
	}
	prof := p.Profile()
	prof.Annotate(st)
	if prof.Executor != "stream" {
		t.Fatalf("executor = %q, want stream", prof.Executor)
	}

	byRule := map[string]*RuleProfile{}
	for i := range prof.Rules {
		byRule[prof.Rules[i].Rule] = &prof.Rules[i]
	}
	proj := byRule["path(X, direct, Y, C) :- arc(X, Y, C)."]
	if proj == nil {
		t.Fatalf("projection rule not in profile; have %d rules", len(prof.Rules))
	}
	if len(proj.Ops) != 1 || proj.Ops[0].Kind != "scan" {
		t.Fatalf("projection ops = %+v, want one scan", proj.Ops)
	}
	op := proj.Ops[0]
	if op.Out != 5 || op.Probes != 5 || op.Build != 5 {
		t.Fatalf("scan counters out=%d probes=%d build=%d, want 5/5/5 (arc has 5 rows)", op.Out, op.Probes, op.Build)
	}
	if proj.Firings != 5 {
		t.Fatalf("Annotate: projection firings = %d, want 5", proj.Firings)
	}

	// The last operator's Out is the rule's firing count, for every rule.
	for _, rp := range prof.Rules {
		if len(rp.Ops) == 0 {
			continue
		}
		if got := rp.Ops[len(rp.Ops)-1].Out; got != rp.Firings {
			t.Errorf("rule %d: last op out=%d != firings=%d", rp.Index, got, rp.Firings)
		}
	}

	// A second snapshot minus the first is all zeros: no solve ran in
	// between.
	delta := p.Profile().Sub(prof)
	for _, rp := range delta.Rules {
		for _, op := range rp.Ops {
			if op.In != 0 || op.Out != 0 || op.Probes != 0 || op.Delta != 0 || op.Groups != 0 {
				t.Fatalf("idle delta nonzero: rule %d op %d: %+v", rp.Index, op.Step, op)
			}
		}
	}

	var b strings.Builder
	prof.Render(&b)
	text := b.String()
	for _, want := range []string{"EXPLAIN ANALYZE (executor=stream plan=syntactic)", "scan", "aggregate", "groups="} {
		if !strings.Contains(text, want) {
			t.Errorf("Render output missing %q:\n%s", want, text)
		}
	}
	_ = m
}

// TestProfileTupleExecutorZero: the tuple interpreter is uninstrumented;
// the profile still carries the operator structure with zero counters.
func TestProfileTupleExecutorZero(t *testing.T) {
	p, err := Load(profileSrc, Options{Executor: ExecutorTuple, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Solve(); err != nil {
		t.Fatal(err)
	}
	prof := p.Profile()
	if prof.Executor != "tuple" {
		t.Fatalf("executor = %q, want tuple", prof.Executor)
	}
	ops := 0
	for _, rp := range prof.Rules {
		for _, op := range rp.Ops {
			ops++
			if op.In != 0 || op.Out != 0 || op.Probes != 0 {
				t.Fatalf("tuple profile has live counters: %+v", op)
			}
			if op.Kind == "" || op.Op == "" {
				t.Fatalf("missing operator description: %+v", op)
			}
		}
	}
	if ops == 0 {
		t.Fatal("no operators in profile")
	}
}
