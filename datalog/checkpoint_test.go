package datalog_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/datalog"
	"repro/internal/faults"
)

// exampleDir holds the shipped example programs used by the
// differential checkpoint/resume tests.
const exampleDir = "../examples/programs"

// exampleOptions returns the Options a program file needs (game.mdl
// recurses through negation and requires the §6.3 fallback).
func exampleOptions(name string) datalog.Options {
	if name == "game.mdl" {
		return datalog.Options{WFSFallback: true}
	}
	return datalog.Options{}
}

// sameTotals compares the scalar totals of two Stats (the breakdown
// slices make Stats incomparable with ==).
func sameTotals(a, b datalog.Stats) bool {
	return a.Components == b.Components && a.Rounds == b.Rounds &&
		a.Firings == b.Firings && a.Derived == b.Derived && a.Probes == b.Probes
}

func loadExample(t *testing.T, name string) (*datalog.Program, string) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join(exampleDir, name))
	if err != nil {
		t.Fatal(err)
	}
	p, err := datalog.Load(string(src), exampleOptions(name))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return p, string(src)
}

// TestSnapshotRestoreRoundTrip: Snapshot/Restore is the identity on a
// solved model, including cumulative stats.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p, _ := loadExample(t, "shortestpath.mdl")
	m, stats, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	data := m.Snapshot()
	got, err := p.Restore(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != m.String() {
		t.Fatalf("restored model differs:\n%s\nwant:\n%s", got, m)
	}
	// A snapshot records the four core scalar totals only, so the
	// restored stats carry no probes and no per-rule/per-component
	// breakdowns.
	rs := got.Stats()
	if rs.Components != stats.Components || rs.Rounds != stats.Rounds ||
		rs.Firings != stats.Firings || rs.Derived != stats.Derived {
		t.Fatalf("restored stats %+v, want totals of %+v", rs, stats)
	}
	if string(got.Snapshot()) != string(data) {
		t.Fatal("re-encoding a restored model must be byte-identical")
	}
}

// TestRestoreFingerprintMismatch: a checkpoint from program A must be
// rejected by program B, even when the schemas are compatible.
func TestRestoreFingerprintMismatch(t *testing.T) {
	a, src := loadExample(t, "shortestpath.mdl")
	m, _, err := a.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Same program text plus one extra fact: different fingerprint.
	b, err := datalog.Load(src+"\narc(zz1, zz2, 9).\n", datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Restore(m.Snapshot()); !errors.Is(err, datalog.ErrFingerprintMismatch) {
		t.Fatalf("err = %v, want ErrFingerprintMismatch", err)
	}
}

// TestRestoreCorrupt: damaged bytes are rejected with
// ErrSnapshotCorrupt, never silently decoded.
func TestRestoreCorrupt(t *testing.T) {
	p, _ := loadExample(t, "shortestpath.mdl")
	m, _, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	data := m.Snapshot()
	data[len(data)/2] ^= 0x40
	if _, err := p.Restore(data); !errors.Is(err, datalog.ErrSnapshotCorrupt) {
		t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
	}
}

// TestCheckpointResumeDifferential interrupts every shipped example
// program (omega.mdl diverges by design and is excluded) under a tiny
// derivation budget with file checkpointing on, then restores the last
// checkpoint and resumes — repeatedly if the budget keeps biting —
// asserting the final model renders identically to an uninterrupted
// solve.
func TestCheckpointResumeDifferential(t *testing.T) {
	entries, err := os.ReadDir(exampleDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".mdl") || name == "omega.mdl" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			p, _ := loadExample(t, name)
			full, fullStats, err := p.Solve()
			if err != nil {
				t.Fatal(err)
			}

			ckpt := filepath.Join(t.TempDir(), "model.ckpt")
			p2, _ := loadExample(t, name)
			ctx := context.Background()
			m, _, err := p2.SolveContext(ctx, nil,
				datalog.WithMaxFacts(4), datalog.WithCheckpoint(datalog.FileCheckpoint(ckpt), 1))
			resumes := 0
			for errors.Is(err, datalog.ErrBudgetExceeded) {
				restored, rerr := p2.RestoreFile(ckpt)
				if rerr != nil {
					t.Fatalf("restore after interrupt %d: %v", resumes, rerr)
				}
				resumes++
				if resumes > 1000 {
					t.Fatal("resume loop does not converge")
				}
				// Keep the budget tight for a few resumes to exercise
				// repeated interruption, then let it finish.
				opts := []datalog.SolveOption{datalog.WithCheckpoint(datalog.FileCheckpoint(ckpt), 1)}
				if resumes < 3 {
					opts = append(opts, datalog.WithMaxFacts(4))
				}
				m, _, err = p2.Resume(ctx, restored, opts...)
			}
			if err != nil {
				t.Fatalf("after %d resumes: %v", resumes, err)
			}
			if resumes == 0 {
				t.Fatalf("budget never interrupted %s; tighten MaxFacts", name)
			}
			if m.String() != full.String() {
				t.Fatalf("resumed model differs from one-shot solve after %d resumes:\n%s\nwant:\n%s", resumes, m, full)
			}
			if s := m.Stats(); s.Rounds < fullStats.Rounds || s.Derived < fullStats.Derived {
				t.Fatalf("cumulative stats %+v fell below one-shot stats %+v", s, fullStats)
			}
		})
	}
}

// TestCrashRecovery simulates a crash mid-fixpoint with an injected
// panic at a round boundary: the atomic file sink must still hold a
// valid earlier checkpoint, and restore+resume must reach exactly the
// uninterrupted model.
func TestCrashRecovery(t *testing.T) {
	for _, name := range []string{"shortestpath.mdl", "party.mdl", "circuit.mdl", "companycontrol.mdl", "game.mdl"} {
		t.Run(name, func(t *testing.T) {
			p, _ := loadExample(t, name)
			full, _, err := p.Solve()
			if err != nil {
				t.Fatal(err)
			}

			ckpt := filepath.Join(t.TempDir(), "crash.ckpt")
			faults.Arm(faults.Fault{Point: faults.CoreRound, After: 2, Panic: true})
			defer faults.Reset()
			p2, _ := loadExample(t, name)
			_, _, err = p2.SolveContext(context.Background(), nil,
				datalog.WithCheckpoint(datalog.FileCheckpoint(ckpt), 1))
			if !errors.Is(err, datalog.ErrInternal) {
				t.Fatalf("injected crash: err = %v, want ErrInternal", err)
			}
			faults.Reset()

			restored, err := p2.RestoreFile(ckpt)
			if err != nil {
				t.Fatalf("post-crash restore: %v", err)
			}
			m, _, err := p2.Resume(context.Background(), restored)
			if err != nil {
				t.Fatalf("post-crash resume: %v", err)
			}
			if m.String() != full.String() {
				t.Fatalf("post-crash resumed model differs:\n%s\nwant:\n%s", m, full)
			}
		})
	}
}

// TestCheckpointSinkFailureFacade: a sink write error surfaces as
// ErrCheckpoint with the partial model attached.
func TestCheckpointSinkFailureFacade(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sink.ckpt")
	faults.Arm(faults.Fault{Point: faults.SnapshotSinkWrite, After: 2, Sticky: true})
	defer faults.Reset()
	p, _ := loadExample(t, "shortestpath.mdl")
	m, _, err := p.SolveContext(context.Background(), nil,
		datalog.WithCheckpoint(datalog.FileCheckpoint(ckpt), 1))
	if !errors.Is(err, datalog.ErrCheckpoint) {
		t.Fatalf("err = %v, want ErrCheckpoint", err)
	}
	if m == nil {
		t.Fatal("checkpoint failure must still return the partial model")
	}
	// The first write landed before the fault armed its After count, so
	// the file still restores.
	if _, err := p.RestoreFile(ckpt); err != nil {
		t.Fatalf("surviving checkpoint must restore: %v", err)
	}
}

// TestTornCheckpointFile: a truncated checkpoint file (torn write,
// simulated by the restore-read fault) is rejected as corrupt.
func TestTornCheckpointFile(t *testing.T) {
	p, _ := loadExample(t, "shortestpath.mdl")
	m, _, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "torn.ckpt")
	if err := m.WriteSnapshot(ckpt); err != nil {
		t.Fatal(err)
	}
	faults.Arm(faults.Fault{Point: faults.SnapshotRestoreRead, Sticky: true})
	defer faults.Reset()
	if _, err := p.RestoreFile(ckpt); !errors.Is(err, datalog.ErrSnapshotCorrupt) {
		t.Fatalf("err = %v, want ErrSnapshotCorrupt", err)
	}
}

// TestSolveMoreAccumulatesStats: extending a model reports cumulative
// stats, not per-extension counts.
func TestSolveMoreAccumulatesStats(t *testing.T) {
	p, err := datalog.Load(spChain, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, stats, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	m2, stats2, err := p.SolveMore(m, datalog.NewFact("arc",
		datalog.Sym("e"), datalog.Sym("f"), datalog.Num(1)))
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Rounds <= stats.Rounds || stats2.Derived <= stats.Derived {
		t.Fatalf("SolveMore stats %+v must extend %+v", stats2, stats)
	}
	if !sameTotals(m2.Stats(), stats2) {
		t.Fatalf("model stats %+v != returned stats %+v", m2.Stats(), stats2)
	}
}

func TestWatermarkRoundTrip(t *testing.T) {
	prog, _ := loadExample(t, "shortestpath.mdl")
	m, _, err := prog.Solve()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wm.snap")
	if err := m.WriteSnapshotWatermark(path, 42); err != nil {
		t.Fatal(err)
	}
	m2, seq, err := prog.RestoreFileWatermark(path)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("watermark %d, want 42", seq)
	}
	if got, want := m2.Snapshot(), m.Snapshot(); !bytes.Equal(got, want) {
		t.Fatal("restored model differs")
	}
	// Plain WriteSnapshot stamps watermark 0 and RestoreFile drops it.
	if err := m.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if _, seq, err = prog.RestoreFileWatermark(path); err != nil || seq != 0 {
		t.Fatalf("seq %d err %v, want 0 nil", seq, err)
	}
}
