package datalog

import (
	"reflect"
	"testing"
)

const querySP = `
.cost arc/3 : minreal.
.cost path/4 : minreal.
.cost s/3 : minreal.
.ic :- arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
arc(a, b, 1).
arc(b, c, 2).
arc(a, d, 9).
`

func solveQuerySP(t *testing.T) (*Program, *Model) {
	t.Helper()
	p, err := Load(querySP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return p, m
}

func TestMatchWildcards(t *testing.T) {
	_, m := solveQuerySP(t)
	// s(a, _): every target reachable from a.
	rows := m.Match("s", Sym("a"), Any())
	if len(rows) != 3 {
		t.Fatalf("s(a, _) matched %d rows, want 3: %v", len(rows), rows)
	}
	for _, row := range rows {
		if got := row[0].String(); got != "a" {
			t.Fatalf("bound position must stay bound, got %s", got)
		}
		if len(row) != 3 {
			t.Fatalf("cost must be appended: %v", row)
		}
	}
	// All-wildcard match equals Facts.
	all := m.Match("s", Any(), Any())
	if !reflect.DeepEqual(all, m.Facts("s")) {
		t.Fatalf("all-wildcard Match must equal Facts:\n%v\nvs\n%v", all, m.Facts("s"))
	}
	// Fully ground match is a point lookup.
	one := m.Match("s", Sym("a"), Sym("c"))
	if len(one) != 1 {
		t.Fatalf("ground match: %v", one)
	}
	if n, _ := one[0][2].Float(); n != 3 {
		t.Fatalf("s(a, c) cost %v, want 3", one[0][2])
	}
	// Wrong arity matches nothing.
	if rows := m.Match("s", Any()); rows != nil {
		t.Fatalf("wrong arity must match nothing, got %v", rows)
	}
	// Unknown predicate matches nothing.
	if rows := m.Match("nope", Any()); rows != nil {
		t.Fatalf("unknown predicate must match nothing, got %v", rows)
	}
}

// TestFactsDeterministicSortedOrder pins the documented ordering: rows
// ascend tuple-wise with numbers compared numerically, independent of
// insertion order.
func TestFactsDeterministicSortedOrder(t *testing.T) {
	p, err := Load(".cost w/2 : minreal.\n", Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := p.Solve(
		NewFact("w", Num(10), Num(1)),
		NewFact("w", Num(2), Num(1)),
		NewFact("w", Num(1), Num(1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	rows := m.Facts("w")
	var got []float64
	for _, r := range rows {
		n, _ := r[0].Float()
		got = append(got, n)
	}
	want := []float64{1, 2, 10}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Facts order %v, want numeric ascending %v", got, want)
	}
}

func TestValueIntrospection(t *testing.T) {
	cases := []struct {
		v    Value
		kind ValueKind
	}{
		{Sym("a"), SymValue},
		{Num(3.5), NumValue},
		{Bool(true), BoolValue},
		{Str("x"), StrValue},
		{SetOf(Sym("a")), SetValue},
		{Any(), AnyValue},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Fatalf("%s: kind %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if s, ok := Sym("a").Text(); !ok || s != "a" {
		t.Fatal("Text of Sym")
	}
	if s, ok := Str("x").Text(); !ok || s != "x" {
		t.Fatal("Text of Str")
	}
	if _, ok := Num(1).Text(); ok {
		t.Fatal("Text of Num must fail")
	}
	elems, ok := SetOf(Sym("b"), Sym("a")).Elems()
	if !ok || len(elems) != 2 || elems[0].String() != "a" {
		t.Fatalf("Elems: %v", elems)
	}
	if Any().String() != "_" {
		t.Fatal("Any renders as _")
	}
	if Any().Equal(Any()) || Any().Equal(Sym("a")) {
		t.Fatal("Any equals nothing")
	}
}

func TestPredicatesAndSize(t *testing.T) {
	p, m := solveQuerySP(t)
	decls := p.Predicates()
	byName := map[string]PredDecl{}
	for _, d := range decls {
		byName[d.Name] = d
	}
	s, ok := byName["s"]
	if !ok || !s.HasCost || s.Arity != 3 || s.Lattice != "minreal" {
		t.Fatalf("s declaration: %+v", s)
	}
	for i := 1; i < len(decls); i++ {
		if decls[i].Name < decls[i-1].Name {
			t.Fatalf("declarations not sorted: %v", decls)
		}
	}
	if m.Size() == 0 {
		t.Fatal("Size must count stored tuples")
	}
	preds := m.Preds()
	if len(preds) == 0 || preds[0] != "arc" {
		t.Fatalf("Preds: %v", preds)
	}
}
