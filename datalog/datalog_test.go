package datalog

import (
	"math"
	"strings"
	"testing"

	"repro/internal/programs"
)

func TestQuickstartShortestPath(t *testing.T) {
	p, err := Load(programs.ShortestPath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, stats, err := p.Solve(
		NewFact("arc", Sym("a"), Sym("b"), Num(1)),
		NewFact("arc", Sym("b"), Sym("c"), Num(2)),
		NewFact("arc", Sym("a"), Sym("c"), Num(5)),
	)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := m.Cost("s", Sym("a"), Sym("c"))
	if !ok {
		t.Fatal("s(a,c) missing")
	}
	if f, _ := c.Float(); f != 3 {
		t.Fatalf("s(a,c) = %v, want 3", c)
	}
	if stats.Rounds == 0 || stats.Firings == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if !m.Has("s", Sym("a"), Sym("b")) || m.Has("s", Sym("c"), Sym("a")) {
		t.Fatal("Has is wrong")
	}
}

func TestFactsAndLen(t *testing.T) {
	p, err := Load(programs.CompanyControl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := p.Solve(
		NewFact("s", Sym("a"), Sym("b"), Num(0.6)),
		NewFact("s", Sym("b"), Sym("c"), Num(0.6)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Has("c", Sym("a"), Sym("c")) {
		t.Fatal("a controls c through b")
	}
	rows := m.Facts("c")
	if len(rows) != m.Len("c") || len(rows) != 3 {
		t.Fatalf("c facts = %v", rows)
	}
	if !strings.Contains(m.String(), "c(a, b).") {
		t.Fatalf("model rendering:\n%s", m)
	}
}

func TestClassify(t *testing.T) {
	p, err := Load(programs.ShortestPath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl := p.Classify()
	if !cl.Admissible || cl.RMonotonic || cl.AggregateStratified || !cl.NegationStratified {
		t.Fatalf("classification = %+v", cl)
	}
	// A non-admissible program loads only with SkipChecks and reports why.
	if _, err := Load(programs.TwoMinimalModels, Options{}); err == nil {
		t.Fatal("two-minimal-models program must be rejected")
	}
	p, err = Load(programs.TwoMinimalModels, Options{SkipChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	cl = p.Classify()
	if cl.Admissible || cl.Reason == "" {
		t.Fatalf("classification = %+v", cl)
	}
}

func TestEpsilonHalfsum(t *testing.T) {
	p, err := Load(programs.Halfsum, Options{Epsilon: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	c, ok := m.Cost("p", Sym("a"))
	if !ok {
		t.Fatal("p(a) missing")
	}
	if f, _ := c.Float(); math.Abs(f-1) > 1e-6 {
		t.Fatalf("p(a) = %v, want ≈1", c)
	}
}

func TestSolveMoreFacade(t *testing.T) {
	p, err := Load(programs.ShortestPath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := p.Solve(
		NewFact("arc", Sym("a"), Sym("b"), Num(4)),
		NewFact("arc", Sym("b"), Sym("c"), Num(4)),
	)
	if err != nil {
		t.Fatal(err)
	}
	inc, _, err := p.SolveMore(base, NewFact("arc", Sym("a"), Sym("c"), Num(1)))
	if err != nil {
		t.Fatal(err)
	}
	c, _ := inc.Cost("s", Sym("a"), Sym("c"))
	if f, _ := c.Float(); f != 1 {
		t.Fatalf("incremental s(a,c) = %v, want 1", c)
	}
	// Original model intact.
	c, _ = base.Cost("s", Sym("a"), Sym("c"))
	if f, _ := c.Float(); f != 8 {
		t.Fatalf("base model mutated: s(a,c) = %v", c)
	}
	// Rejection path surfaces.
	pc, err := Load(programs.Circuit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m0, _, err := pc.Solve(NewFact("gate", Sym("g"), Sym("and")))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pc.SolveMore(m0, NewFact("connect", Sym("g"), Sym("w"))); err == nil {
		t.Fatal("pseudo-monotone aggregate input must be rejected")
	}
}

func TestExplainFacade(t *testing.T) {
	p, err := Load(programs.ShortestPath, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := p.Solve(
		NewFact("arc", Sym("a"), Sym("b"), Num(1)),
		NewFact("arc", Sym("b"), Sym("c"), Num(2)),
	)
	if err != nil {
		t.Fatal(err)
	}
	rule, supports, ok := m.Explain("s", Sym("a"), Sym("c"))
	if !ok {
		t.Fatal("no explanation for s(a,c)")
	}
	if !strings.Contains(rule, "min") || len(supports) == 0 {
		t.Fatalf("rule = %q, supports = %v", rule, supports)
	}
	tree := m.ExplainTree("s", 4, Sym("a"), Sym("c"))
	for _, want := range []string{"s(a, c, 3)", "arc(a, b, 1)", "[fact]"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
	// Without tracing, no explanations.
	p2, _ := Load(programs.ShortestPath, Options{})
	m2, _, _ := p2.Solve(NewFact("arc", Sym("a"), Sym("b"), Num(1)))
	if _, _, ok := m2.Explain("s", Sym("a"), Sym("b")); ok {
		t.Fatal("tracing must be opt-in")
	}
}

func TestGameAggFallbackFacade(t *testing.T) {
	src := `
.cost wins/1 : countnat.
win(X)  :- move(X, Y), not win(Y).
wins(N) :- N = count : win(X).
`
	p, err := Load(src, Options{WFSFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := p.Solve(NewFact("move", Sym("a"), Sym("b")))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Has("win", Sym("a")) || m.Has("win", Sym("b")) {
		t.Fatal("game solved wrong")
	}
	n, _ := m.Cost("wins")
	if f, _ := n.Float(); f != 1 {
		t.Fatalf("wins = %v", n)
	}
}

func TestValueKinds(t *testing.T) {
	if s := SetOf(Sym("b"), Sym("a")).String(); s != "{a, b}" {
		t.Fatalf("set rendering = %q", s)
	}
	if v, ok := Bool(true).Truth(); !ok || !v {
		t.Fatal("Truth broken")
	}
	if _, ok := Sym("x").Float(); ok {
		t.Fatal("symbols have no Float")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Sym("a")) {
		t.Fatal("Equal broken")
	}
}

func TestBadFacts(t *testing.T) {
	p, err := Load(programs.ShortestPath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Non-numeric cost on a minreal predicate.
	if _, _, err := p.Solve(NewFact("arc", Sym("a"), Sym("b"), Sym("w"))); err == nil {
		t.Fatal("symbolic cost must be rejected")
	}
}

func TestParseErrorSurface(t *testing.T) {
	if _, err := Load("p(X :- q(X).", Options{}); err == nil {
		t.Fatal("syntax errors must surface")
	}
}

func TestCircuitDefaults(t *testing.T) {
	p, err := Load(programs.Circuit, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := p.Solve(
		NewFact("input", Sym("w"), Num(1)),
		NewFact("gate", Sym("g"), Sym("or")),
		NewFact("connect", Sym("g"), Sym("w")),
		NewFact("gate", Sym("h"), Sym("and")),
		NewFact("connect", Sym("h"), Sym("w")),
		NewFact("connect", Sym("h"), Sym("u")), // u is an unset wire: default 0
	)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := m.Cost("t", Sym("g"))
	if b, _ := g.Truth(); !b {
		t.Fatal("t(g) must be true")
	}
	h, ok := m.Cost("t", Sym("h"))
	if !ok {
		t.Fatal("default-value predicates always answer")
	}
	if b, _ := h.Truth(); b {
		t.Fatal("t(h) must be false (AND over a default-false wire)")
	}
}
