package datalog

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/val"
)

// The extension points below expose Figure 1's parameterized rows — the
// set-intersection lattice over a declared universe (row 10) and
// monotone multigraph properties (row 11) — plus arbitrary user-defined
// monotone aggregates. Registration is global (the rule language resolves
// names at Load time) and must happen before Load; duplicate names panic.

// RegisterSetUniverse registers a set lattice named name over the given
// finite universe, ordered by ⊆ (bottom {}), usable in .cost
// declarations.
func RegisterSetUniverse(name string, universe ...Value) {
	lattice.Register(lattice.NewSetUnionOver(name, toSet(universe)))
}

// RegisterIntersection registers the set-intersection aggregate of
// Figure 1 row 10 over the given finite universe: monotone on (2^S, ⊇),
// with Intersection(∅) = S. Its domain lattice is registered as
// "<name>_dom" for .cost declarations.
func RegisterIntersection(name string, universe ...Value) {
	a := lattice.NewIntersection(name, toSet(universe))
	lattice.Register(a.Domain())
	lattice.RegisterAggregate(a)
}

// Edge builds the canonical edge value "u->v" used by graph-property
// aggregates. In rule text, write edges as strings: {"u->v"}.
func Edge(u, v string) Value { return Value{v: lattice.Edge(u, v)} }

// RegisterGraphProperty registers a Figure 1 row 11 aggregate: the
// multiset elements are edge sets, and the aggregate returns whether prop
// holds of the union multigraph. prop MUST be monotone — adding edges
// must never turn it false — or the minimal-model guarantees are void;
// the engine cannot check this for you.
func RegisterGraphProperty(name string, prop func(edges []Value) bool) {
	lattice.RegisterAggregate(lattice.NewProperty(name, func(s *val.Set) bool {
		elems := s.Elems()
		out := make([]Value, len(elems))
		for i, e := range elems {
			out[i] = Value{v: e}
		}
		return prop(out)
	}))
}

// RegisterConnectsProperty registers the prebuilt monotone property
// "the union multigraph has a directed path from u to v".
func RegisterConnectsProperty(name, u, v string) {
	lattice.RegisterAggregate(lattice.NewProperty(name, lattice.ConnectsProperty(u, v)))
}

// RegisterPathLengthProperty registers the prebuilt monotone property
// "the union multigraph contains a directed path of length ≥ k" (the
// paper's example of a monotone property P).
func RegisterPathLengthProperty(name string, k int) {
	lattice.RegisterAggregate(lattice.NewProperty(name, lattice.HasPathProperty(k)))
}

// EdgeEnds splits an edge value built by Edge (or written as a "u->v"
// string) back into its endpoints.
func EdgeEnds(e Value) (u, v string, ok bool) {
	s := ""
	switch e.v.Kind {
	case val.Sym, val.Str:
		s = e.v.S
	default:
		return "", "", false
	}
	for i := 0; i+1 < len(s); i++ {
		if s[i] == '-' && s[i+1] == '>' {
			return s[:i], s[i+2:], true
		}
	}
	return "", "", false
}

func toSet(vs []Value) *val.Set {
	raw := make([]val.T, len(vs))
	for i, v := range vs {
		raw[i] = v.v
	}
	return val.NewSet(raw)
}

// MustLoad is Load that panics on error — for package-level program
// variables in applications and examples.
func MustLoad(src string, opts Options) *Program {
	p, err := Load(src, opts)
	if err != nil {
		panic(fmt.Sprintf("datalog: %v", err))
	}
	return p
}
