package datalog

import (
	"sort"

	"repro/internal/relation"
	"repro/internal/val"
)

// Query-side facade: value introspection, wildcard matching and schema
// declarations. These are the read-only primitives a serving layer
// builds on — none of them mutate the model (not even lazily), so any
// number of goroutines may call them concurrently on the same Model
// while a writer computes a successor model with SolveMore and swaps an
// atomic pointer.

// ValueKind discriminates the variants of Value.
type ValueKind int

// The value kinds mirrored from the rule language, plus AnyValue for
// the Match wildcard.
const (
	SymValue ValueKind = iota
	NumValue
	BoolValue
	StrValue
	SetValue
	AnyValue
)

// Any returns the wildcard value: as a Model.Match argument it matches
// every constant in that position. It is not a constant of the rule
// language and may not appear in facts.
func Any() Value { return Value{wild: true} }

// Kind returns the variant of v.
func (v Value) Kind() ValueKind {
	if v.wild {
		return AnyValue
	}
	switch v.v.Kind {
	case val.Num:
		return NumValue
	case val.Bool:
		return BoolValue
	case val.Str:
		return StrValue
	case val.SetKind:
		return SetValue
	}
	return SymValue
}

// Text returns the text of a Sym or Str value.
func (v Value) Text() (string, bool) {
	if !v.wild && (v.v.Kind == val.Sym || v.v.Kind == val.Str) {
		return v.v.S, true
	}
	return "", false
}

// Elems returns the elements of a set value in canonical order.
func (v Value) Elems() ([]Value, bool) {
	if v.wild || v.v.Kind != val.SetKind {
		return nil, false
	}
	raw := v.v.Set.Elems()
	out := make([]Value, len(raw))
	for i, e := range raw {
		out[i] = Value{v: e}
	}
	return out, true
}

// Match returns every tuple of the predicate whose non-cost arguments
// agree with args position-wise, with Any acting as a wildcard; for cost
// predicates the cost is appended last, as in Facts. len(args) must
// equal the predicate's non-cost arity or no rows match. Rows come back
// in the same deterministic sorted order as Facts. Like Facts, Match
// enumerates only the stored core of the extension: virtual default
// rows of a .default predicate are not invented for unmentioned tuples.
func (m *Model) Match(pred string, args ...Value) [][]Value {
	var out [][]Value
	for _, k := range m.db.Preds() {
		if k.Name() != pred {
			continue
		}
		pi := m.schemas.Info(k)
		if pi == nil || pi.NonCost() != len(args) {
			continue
		}
		for _, row := range m.db.Rel(k).Rows() {
			if !rowMatches(row, args) {
				continue
			}
			vs := make([]Value, 0, len(row.Args)+1)
			for _, a := range row.Args {
				vs = append(vs, Value{v: a})
			}
			if row.HasCost {
				vs = append(vs, Value{v: row.Cost})
			}
			out = append(out, vs)
		}
	}
	return out
}

func rowMatches(row relation.Row, pattern []Value) bool {
	if len(pattern) != len(row.Args) {
		return false
	}
	for i, p := range pattern {
		if p.wild {
			continue
		}
		if !val.Equal(row.Args[i], p.v) {
			return false
		}
	}
	return true
}

// Size returns the total number of stored tuples across all predicates
// of the model.
func (m *Model) Size() int {
	n := 0
	for _, k := range m.db.Preds() {
		n += m.db.Rel(k).Len()
	}
	return n
}

// Preds returns the names of the predicates with at least one stored
// tuple, sorted.
func (m *Model) Preds() []string {
	seen := map[string]bool{}
	var out []string
	for _, k := range m.db.Preds() {
		if m.db.Rel(k).Len() == 0 || seen[k.Name()] {
			continue
		}
		seen[k.Name()] = true
		out = append(out, k.Name())
	}
	sort.Strings(out)
	return out
}

// PredDecl describes one predicate of a loaded program.
type PredDecl struct {
	// Name and Arity identify the predicate; Arity counts the cost
	// argument for cost predicates.
	Name  string
	Arity int
	// HasCost marks a cost predicate (.cost declaration); Lattice names
	// its cost lattice.
	HasCost bool
	Lattice string
	// HasDefault marks a default-value cost predicate (.default).
	HasDefault bool
}

// Predicates returns the declarations of every predicate of the
// program, sorted by name then arity.
func (p *Program) Predicates() []PredDecl {
	out := make([]PredDecl, 0, len(p.en.Schemas))
	for _, pi := range p.en.Schemas {
		d := PredDecl{
			Name:       pi.Key.Name(),
			Arity:      pi.Arity,
			HasCost:    pi.HasCost,
			HasDefault: pi.HasDefault,
		}
		if pi.HasCost && pi.L != nil {
			d.Lattice = pi.L.Name()
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}
