package datalog

import (
	"repro/internal/core"
	"repro/internal/obs"
)

// Event is one engine observation: a solve, component or round boundary,
// a rule pass, a checkpoint flush, or a resource warning. Events are
// emitted synchronously from the evaluation loop, so a Sink must be
// fast and must not block; a nil Options.Sink keeps the engine at full
// speed (the emission sites compile to a single nil check).
type Event = obs.Event

// EventKind discriminates Event payloads.
type EventKind = obs.Kind

// EventSink receives engine events. Implementations are called from the
// solving goroutine; they must not call back into the Program or Model
// being solved.
type EventSink = obs.Sink

// SinkFunc adapts a function to the EventSink interface.
type SinkFunc = obs.SinkFunc

// The event kinds, in roughly the order a solve emits them.
const (
	// EventSolveBegin/End bracket one Solve/SolveMore/Resume call;
	// the end event carries the cumulative totals and any error.
	EventSolveBegin = obs.SolveBegin
	EventSolveEnd   = obs.SolveEnd
	// EventComponentBegin/End bracket one dependency-graph component,
	// with its predicates, admissibility verdict and WFS-fallback flag.
	EventComponentBegin = obs.ComponentBegin
	EventComponentEnd   = obs.ComponentEnd
	// EventRoundEnd reports one completed fixpoint round with the
	// facts derived and join probes performed in that round.
	EventRoundEnd = obs.RoundEnd
	// EventRuleFired reports one rule pass within a round: firings,
	// derivations and the rule's cumulative evaluation nanoseconds.
	EventRuleFired = obs.RuleFired
	// EventCheckpointFlushed reports a successful checkpoint write.
	EventCheckpointFlushed = obs.CheckpointFlushed
	// EventDivergenceWarning precedes an ErrDiverged failure.
	EventDivergenceWarning = obs.DivergenceWarning
	// EventBudgetBreach precedes an ErrBudgetExceeded failure.
	EventBudgetBreach = obs.BudgetBreach
)

// MultiSink fans events out to several sinks (nils are skipped).
func MultiSink(sinks ...EventSink) EventSink { return obs.Multi(sinks...) }

// RuleStats is the per-rule slice of Stats: how many rounds evaluated
// the rule, its firings, derivations, join probes, and cumulative wall
// time.
type RuleStats = core.RuleStats

// ComponentStats is the per-component slice of Stats, including the
// component's predicates, admissibility verdict and WFS-fallback flag.
type ComponentStats = core.ComponentStats
