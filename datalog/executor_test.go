package datalog_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/datalog"
)

// The executor contract (docs/ARCHITECTURE.md): the streaming
// relational-algebra executor and the tuple-at-a-time interpreter are
// interchangeable backends — for every program, every parallelism level
// and every incremental chain, the model, fact insertion order, traces
// and Stats totals are byte-identical. These tests enforce the contract
// differentially over every shipped example program.

// solveExecutor loads one example with tracing, the given executor and
// worker count, and solves it.
func solveExecutor(t *testing.T, name string, exe datalog.Executor, par int) (*datalog.Program, *datalog.Model, datalog.Stats) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join(exampleDir, name))
	if err != nil {
		t.Fatal(err)
	}
	opts := exampleOptions(name)
	opts.Trace = true
	opts.Executor = exe
	opts.Parallelism = par
	p, err := datalog.Load(string(src), opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	m, stats, err := p.Solve()
	if err != nil {
		t.Fatalf("%s executor=%v parallelism=%d: %v", name, exe, par, err)
	}
	return p, m, stats
}

// TestExecutorDifferential solves every shipped example program
// (omega.mdl diverges by design and is covered separately) under the
// tuple interpreter and under the streaming executor at parallelism 1,
// 2 and GOMAXPROCS, asserting model, fact order, traces and stats agree
// exactly.
func TestExecutorDifferential(t *testing.T) {
	entries, err := os.ReadDir(exampleDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".mdl") || name == "omega.mdl" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			refP, refM, refStats := solveExecutor(t, name, datalog.ExecutorTuple, 1)
			refModel := refM.String()
			refFacts := factFingerprint(refM)
			refTrace := traceFingerprint(t, refP, refM)
			for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				strP, strM, strStats := solveExecutor(t, name, datalog.ExecutorStream, par)
				if got := strM.String(); got != refModel {
					t.Fatalf("stream parallelism %d model differs:\n%s\nwant:\n%s", par, got, refModel)
				}
				if got := factFingerprint(strM); got != refFacts {
					t.Fatalf("stream parallelism %d fact order differs:\n%s\nwant:\n%s", par, got, refFacts)
				}
				if got := traceFingerprint(t, strP, strM); got != refTrace {
					t.Fatalf("stream parallelism %d traces differ:\n%s\nwant:\n%s", par, got, refTrace)
				}
				if got, want := fmt.Sprintf("%+v", normStats(strStats)), fmt.Sprintf("%+v", normStats(refStats)); got != want {
					t.Fatalf("stream parallelism %d stats differ:\n%s\nwant:\n%s", par, got, want)
				}
			}
		})
	}
}

// TestExecutorDivergenceParity runs the intentionally divergent
// omega.mdl under both executors: the ω-limit detector must trip either
// way, with identical structured errors (component, round, offending
// group, trajectory) and an identical partial model.
func TestExecutorDivergenceParity(t *testing.T) {
	run := func(exe datalog.Executor) (string, string) {
		t.Helper()
		src, err := os.ReadFile(filepath.Join(exampleDir, "omega.mdl"))
		if err != nil {
			t.Fatal(err)
		}
		opts := exampleOptions("omega.mdl")
		opts.Executor = exe
		opts.DivergenceStreak = 50
		p, err := datalog.Load(string(src), opts)
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := p.Solve()
		if !errors.Is(err, datalog.ErrDiverged) {
			t.Fatalf("executor=%v err = %v, want ErrDiverged", exe, err)
		}
		if m == nil {
			t.Fatalf("executor=%v divergence must return the partial model", exe)
		}
		return err.Error(), m.String()
	}
	tupErr, tupModel := run(datalog.ExecutorTuple)
	strErr, strModel := run(datalog.ExecutorStream)
	if strErr != tupErr {
		t.Fatalf("divergence errors differ:\nstream: %s\ntuple:  %s", strErr, tupErr)
	}
	if strModel != tupModel {
		t.Fatalf("partial models differ:\nstream:\n%s\ntuple:\n%s", strModel, tupModel)
	}
}

// TestExecutorSolveMoreChain extends a model twice through the
// incremental path under each executor; the chained models and
// cumulative stats must match the tuple interpreter's exactly. The
// executor is a Load-time option here, exercising the engine's
// incremental entry point with both backends.
func TestExecutorSolveMoreChain(t *testing.T) {
	chain := func(exe datalog.Executor) (string, string, datalog.Stats) {
		t.Helper()
		p, m, _ := solveExecutor(t, "shortestpath.mdl", exe, 1)
		m2, _, err := p.SolveMore(m,
			datalog.NewFact("arc", datalog.Sym("f"), datalog.Sym("a"), datalog.Num(1)),
			datalog.NewFact("arc", datalog.Sym("e"), datalog.Sym("f"), datalog.Num(2)))
		if err != nil {
			t.Fatalf("executor=%v first SolveMore: %v", exe, err)
		}
		m3, stats, err := p.SolveMore(m2,
			datalog.NewFact("arc", datalog.Sym("f"), datalog.Sym("d"), datalog.Num(1)))
		if err != nil {
			t.Fatalf("executor=%v second SolveMore: %v", exe, err)
		}
		return m3.String(), factFingerprint(m3), stats
	}
	refModel, refFacts, refStats := chain(datalog.ExecutorTuple)
	strModel, strFacts, strStats := chain(datalog.ExecutorStream)
	if strModel != refModel {
		t.Fatalf("stream chained model differs:\n%s\nwant:\n%s", strModel, refModel)
	}
	if strFacts != refFacts {
		t.Fatalf("stream chained fact order differs:\n%s\nwant:\n%s", strFacts, refFacts)
	}
	if got, want := fmt.Sprintf("%+v", normStats(strStats)), fmt.Sprintf("%+v", normStats(refStats)); got != want {
		t.Fatalf("stream chained stats differ:\n%s\nwant:\n%s", got, want)
	}
}

// TestExecutorCheckpointParity checkpoints a solve under each executor
// at every round boundary; the final checkpoint bytes must be
// byte-identical (the durable format must not leak the backend).
func TestExecutorCheckpointParity(t *testing.T) {
	snap := func(exe datalog.Executor) []byte {
		t.Helper()
		src, err := os.ReadFile(filepath.Join(exampleDir, "shortestpath.mdl"))
		if err != nil {
			t.Fatal(err)
		}
		opts := exampleOptions("shortestpath.mdl")
		opts.Executor = exe
		p, err := datalog.Load(string(src), opts)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "model.ckpt")
		if _, _, err := p.SolveContext(context.Background(), nil, datalog.WithCheckpoint(datalog.FileCheckpoint(path), 1)); err != nil {
			t.Fatalf("executor=%v solve: %v", exe, err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	tup := snap(datalog.ExecutorTuple)
	str := snap(datalog.ExecutorStream)
	if string(tup) != string(str) {
		t.Fatalf("checkpoint bytes differ between executors (%d vs %d bytes)", len(tup), len(str))
	}
}
