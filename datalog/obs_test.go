package datalog_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/datalog"
)

// captureEvents is a mutex-guarded event sink for tests.
type captureEvents struct {
	mu     sync.Mutex
	events []datalog.Event
}

func (c *captureEvents) sink() datalog.EventSink {
	return datalog.SinkFunc(func(e datalog.Event) {
		c.mu.Lock()
		c.events = append(c.events, e)
		c.mu.Unlock()
	})
}

func (c *captureEvents) all() []datalog.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]datalog.Event(nil), c.events...)
}

func (c *captureEvents) count(k datalog.EventKind) int {
	n := 0
	for _, e := range c.all() {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// TestEventStreamTaxonomy: one solve emits a well-bracketed stream —
// SolveBegin first, SolveEnd last, ComponentBegin/End pairs around the
// rounds of each component, one RoundEnd per counted round, and
// RuleFired events carrying the work the totals report.
func TestEventStreamTaxonomy(t *testing.T) {
	cap := &captureEvents{}
	p, err := datalog.Load(spChain, datalog.Options{Sink: cap.sink()})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	evs := cap.all()
	if len(evs) < 4 {
		t.Fatalf("expected a full event stream, got %d events", len(evs))
	}
	if evs[0].Kind != datalog.EventSolveBegin {
		t.Fatalf("first event %v, want SolveBegin", evs[0].Kind)
	}
	last := evs[len(evs)-1]
	if last.Kind != datalog.EventSolveEnd {
		t.Fatalf("last event %v, want SolveEnd", last.Kind)
	}
	// SolveEnd carries the cumulative totals.
	if last.Firings != stats.Firings || last.Derived != stats.Derived ||
		last.Probes != stats.Probes || last.Round != stats.Rounds {
		t.Fatalf("SolveEnd totals %+v != stats %+v", last, stats)
	}
	if last.Err != "" {
		t.Fatalf("clean solve must not carry an error: %q", last.Err)
	}
	if got := cap.count(datalog.EventRoundEnd); got != stats.Rounds {
		t.Fatalf("RoundEnd events %d, want one per round (%d)", got, stats.Rounds)
	}
	begins, ends := cap.count(datalog.EventComponentBegin), cap.count(datalog.EventComponentEnd)
	if begins != ends || begins != stats.Components {
		t.Fatalf("component events begin=%d end=%d, want %d each", begins, ends, stats.Components)
	}
	// Components are bracketed: every Begin precedes its End, and the
	// End carries predicates and the admissibility verdict.
	open := -1
	for _, e := range evs {
		switch e.Kind {
		case datalog.EventComponentBegin:
			if open >= 0 {
				t.Fatalf("nested ComponentBegin for %d inside %d", e.Component, open)
			}
			open = e.Component
		case datalog.EventComponentEnd:
			if e.Component != open {
				t.Fatalf("ComponentEnd %d, want %d", e.Component, open)
			}
			if e.Preds == "" {
				t.Fatal("ComponentEnd without predicates")
			}
			if !e.Admissible {
				t.Fatalf("admissible program flagged non-admissible: %+v", e)
			}
			open = -1
		case datalog.EventRuleFired:
			if e.Rule == "" {
				t.Fatal("RuleFired without rule text")
			}
		}
	}
	// RuleFired deltas sum to the totals.
	var firings, derived int64
	for _, e := range evs {
		if e.Kind == datalog.EventRuleFired {
			firings += e.Firings
			derived += e.Derived
		}
	}
	if firings != stats.Firings || derived != stats.Derived {
		t.Fatalf("RuleFired deltas sum to firings=%d derived=%d, want %d/%d",
			firings, derived, stats.Firings, stats.Derived)
	}
}

// TestEventStreamCheckpointAndBudget: checkpoint flushes and budget
// breaches surface as events, and a failed solve's SolveEnd carries the
// error.
func TestEventStreamCheckpointAndBudget(t *testing.T) {
	cap := &captureEvents{}
	p, err := datalog.Load(spChain, datalog.Options{Sink: cap.sink()})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "ev.ckpt")
	_, _, err = p.SolveContext(context.Background(), nil,
		datalog.WithMaxFacts(4), datalog.WithCheckpoint(datalog.FileCheckpoint(ckpt), 1))
	if !errors.Is(err, datalog.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if cap.count(datalog.EventCheckpointFlushed) == 0 {
		t.Fatal("no CheckpointFlushed events despite CheckpointEvery=1")
	}
	if cap.count(datalog.EventBudgetBreach) == 0 {
		t.Fatal("no BudgetBreach event before the budget error")
	}
	evs := cap.all()
	last := evs[len(evs)-1]
	if last.Kind != datalog.EventSolveEnd || !strings.Contains(last.Err, "budget") {
		t.Fatalf("SolveEnd of a failed solve must carry the error, got %+v", last)
	}
}

// TestEventStreamDivergence: the ω-limit detector warns before failing.
func TestEventStreamDivergence(t *testing.T) {
	cap := &captureEvents{}
	p, err := datalog.Load(omegaLimit, datalog.Options{Sink: cap.sink(), DivergenceStreak: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Solve(); !errors.Is(err, datalog.ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
	if cap.count(datalog.EventDivergenceWarning) == 0 {
		t.Fatal("no DivergenceWarning event before ErrDiverged")
	}
}

// sumRuleStats folds the per-rule breakdown back into scalar totals.
func sumRuleStats(st datalog.Stats) (firings, derived, probes int64) {
	for _, rs := range st.Rules {
		firings += rs.Firings
		derived += rs.Derived
		probes += rs.Probes
	}
	return
}

// checkBreakdownInvariant asserts the documented invariant: the
// per-rule and per-component breakdowns each sum to the scalar totals.
func checkBreakdownInvariant(t *testing.T, st datalog.Stats, label string) {
	t.Helper()
	f, d, p := sumRuleStats(st)
	if f != st.Firings || d != st.Derived || p != st.Probes {
		t.Fatalf("%s: per-rule sums firings=%d derived=%d probes=%d != totals firings=%d derived=%d probes=%d",
			label, f, d, p, st.Firings, st.Derived, st.Probes)
	}
	var cf, cd, cp int64
	rounds := 0
	for _, cs := range st.Comps {
		cf += cs.Firings
		cd += cs.Derived
		cp += cs.Probes
		rounds += cs.Rounds
	}
	if cf != st.Firings || cd != st.Derived || cp != st.Probes || rounds != st.Rounds {
		t.Fatalf("%s: per-component sums firings=%d derived=%d probes=%d rounds=%d != totals %+v",
			label, cf, cd, cp, rounds, st)
	}
}

// TestStatsBreakdownInvariantExamples: for every shipped example
// program (omega.mdl diverges by design and is excluded), a fresh solve
// satisfies sum(per-rule) == totals, under both strategies.
func TestStatsBreakdownInvariantExamples(t *testing.T) {
	entries, err := os.ReadDir(exampleDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".mdl") || name == "omega.mdl" {
			continue
		}
		for _, strat := range []datalog.Strategy{datalog.SemiNaive, datalog.Naive} {
			label := name
			if strat == datalog.Naive {
				label += "/naive"
			}
			t.Run(label, func(t *testing.T) {
				src, err := os.ReadFile(filepath.Join(exampleDir, name))
				if err != nil {
					t.Fatal(err)
				}
				opts := exampleOptions(name)
				opts.Strategy = strat
				p, err := datalog.Load(string(src), opts)
				if err != nil {
					t.Fatal(err)
				}
				_, stats, err := p.Solve()
				if err != nil {
					t.Fatal(err)
				}
				checkBreakdownInvariant(t, stats, label)
			})
		}
	}
}

// TestStatsBreakdownResume pins the documented resume semantics: a
// snapshot persists only the scalar totals, so after RestoreFile +
// Resume the per-rule/per-component breakdowns cover exactly the
// post-restore work — their sums equal the totals minus the seed.
func TestStatsBreakdownResume(t *testing.T) {
	p, err := datalog.Load(spChain, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, seed, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sp.ckpt")
	if err := m.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	restored, err := p.RestoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot records the four core scalars only: the restored seed
	// has the solve's Firings/Derived but no Probes and no breakdowns.
	rseed := restored.Stats()
	if rseed.Firings != seed.Firings || rseed.Derived != seed.Derived ||
		rseed.Probes != 0 || len(rseed.Rules) != 0 {
		t.Fatalf("restored seed %+v, want the persisted scalars of %+v", rseed, seed)
	}
	_, st, err := p.Resume(context.Background(), restored)
	if err != nil {
		t.Fatal(err)
	}
	if st.Firings < seed.Firings {
		t.Fatalf("resumed totals %d must carry the seed %d", st.Firings, seed.Firings)
	}
	f, d, pr := sumRuleStats(st)
	if f != st.Firings-rseed.Firings || d != st.Derived-rseed.Derived || pr != st.Probes-rseed.Probes {
		t.Fatalf("post-resume breakdown sums firings=%d derived=%d probes=%d, want the deltas over the restored seed (totals %+v, seed %+v)",
			f, d, pr, st, rseed)
	}
}

// TestStatsBreakdownInvariantIncremental: the invariant survives an
// in-memory SolveMore chain — per-rule breakdowns accumulate alongside
// the seeded totals.
func TestStatsBreakdownInvariantIncremental(t *testing.T) {
	p, err := datalog.Load(spChain, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, stats, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	checkBreakdownInvariant(t, stats, "initial solve")
	m2, stats2, err := p.SolveMore(m, datalog.NewFact("arc",
		datalog.Sym("e"), datalog.Sym("f"), datalog.Num(1)))
	if err != nil {
		t.Fatal(err)
	}
	checkBreakdownInvariant(t, stats2, "after SolveMore")
	if _, stats3, err := p.SolveMore(m2, datalog.NewFact("arc",
		datalog.Sym("f"), datalog.Sym("g"), datalog.Num(2))); err != nil {
		t.Fatal(err)
	} else {
		checkBreakdownInvariant(t, stats3, "after second SolveMore")
		if stats3.Firings <= stats2.Firings {
			t.Fatalf("chained stats must grow: %d then %d", stats2.Firings, stats3.Firings)
		}
	}
}
