package datalog

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/snapshot"
)

// Checkpointing. A monotonic program's fixpoint only ever grows: every
// intermediate interpretation sits between the extensional database and
// the least model, and T_P applied to it converges to the same least
// model (Corollary 3.5 plus the monotonicity of T_P). A snapshot taken
// at any round or component boundary is therefore a sound restart
// point — resuming from it yields exactly the model an uninterrupted
// solve would have produced. The snapshot records a fingerprint of the
// program (source text plus .cost/.default declarations), and Restore
// refuses a checkpoint whose fingerprint disagrees with the loaded
// program, so a stale or foreign checkpoint can never silently yield a
// wrong model.

// Checkpoint/restore error classes, testable with errors.Is.
var (
	// ErrCheckpoint marks a failed checkpoint write during a solve: the
	// sink returned an error and evaluation stopped rather than outrun
	// the last recoverable state. The partial model is still returned.
	ErrCheckpoint = core.ErrCheckpoint
	// ErrSnapshotCorrupt marks a checkpoint that failed structural
	// validation or checksum verification on restore.
	ErrSnapshotCorrupt = snapshot.ErrCorrupt
	// ErrSnapshotVersion marks a checkpoint written by an incompatible
	// snapshot format version.
	ErrSnapshotVersion = snapshot.ErrVersion
	// ErrFingerprintMismatch marks a checkpoint taken from a different
	// program than the one attempting to restore it.
	ErrFingerprintMismatch = snapshot.ErrFingerprint
)

// CheckpointSink receives durable snapshots during a solve. FileCheckpoint
// is the standard implementation; tests substitute in-memory sinks.
type CheckpointSink = snapshot.Sink

// FileCheckpoint returns a sink that atomically persists each snapshot
// to path (write to a temp file, fsync, rename), so the file always
// holds a complete, verifiable checkpoint even if the process dies
// mid-write.
func FileCheckpoint(path string) CheckpointSink {
	return &snapshot.FileSink{Path: path}
}

// WithCheckpoint streams durable snapshots of the evolving model to
// sink: at every component boundary, and — when everyRounds > 0 — at
// every everyRounds-th fixpoint round boundary within a component. If a
// checkpoint write fails the solve stops with ErrCheckpoint and the
// partial model.
func WithCheckpoint(sink CheckpointSink, everyRounds int) SolveOption {
	return func(c *solveConfig) {
		c.sink = sink
		c.every = everyRounds
	}
}

// limitsFor finalizes a solveConfig into core.Limits, binding any
// checkpoint sink to this program's fingerprint.
func (p *Program) limitsFor(cfg solveConfig) core.Limits {
	lim := cfg.lim
	if cfg.sink != nil {
		sink, fp := cfg.sink, p.fp
		lim.Checkpoint = func(db *relation.DB, stats core.Stats) error {
			return sink.Write(&snapshot.Snapshot{Fingerprint: fp, Stats: snapStats(stats), DB: db})
		}
		lim.CheckpointEvery = cfg.every
	}
	return lim
}

func snapStats(s core.Stats) snapshot.Stats {
	return snapshot.Stats{Components: s.Components, Rounds: s.Rounds, Firings: s.Firings, Derived: s.Derived}
}

func coreStats(s snapshot.Stats) core.Stats {
	return core.Stats{Components: s.Components, Rounds: s.Rounds, Firings: s.Firings, Derived: s.Derived}
}

// Stats returns the cumulative work that produced this model, carried
// across SolveMore extensions and checkpoint/resume chains.
func (m *Model) Stats() Stats { return m.stats }

// Snapshot serializes the model and its cumulative stats into the
// versioned binary checkpoint format, tagged with the fingerprint of
// the program that computed it. The encoding is deterministic: equal
// models produce identical bytes.
func (m *Model) Snapshot() []byte {
	return snapshot.Encode(&snapshot.Snapshot{
		Fingerprint: snapshot.Fingerprint(m.en.Prog),
		Stats:       snapStats(m.stats),
		DB:          m.db,
	})
}

// WriteSnapshot atomically persists the model's snapshot to path.
func (m *Model) WriteSnapshot(path string) error {
	return m.WriteSnapshotWatermark(path, 0)
}

// WriteSnapshotWatermark is WriteSnapshot stamping the checkpoint with
// a commit-sequence watermark: the serve tier records the sequence
// number of the last assert batch the model subsumes, so a recovering
// server can replay its write-ahead log from seq+1 and compact the log
// behind the checkpoint.
func (m *Model) WriteSnapshotWatermark(path string, seq uint64) error {
	return snapshot.WriteFile(path, &snapshot.Snapshot{
		Fingerprint: snapshot.Fingerprint(m.en.Prog),
		Stats:       snapStats(m.stats),
		DB:          m.db,
		Seq:         seq,
	})
}

// Restore decodes a checkpoint produced by Snapshot/WithCheckpoint into
// a Model. It fails with ErrSnapshotCorrupt, ErrSnapshotVersion, or
// ErrFingerprintMismatch (testable with errors.Is) rather than ever
// returning a model from a different program. The restored model is a
// sound partial interpretation; pass it to Resume to finish the solve.
func (p *Program) Restore(data []byte) (*Model, error) {
	s, err := snapshot.Decode(data, p.en.Schemas)
	if err != nil {
		return nil, fmt.Errorf("datalog: restore: %w", err)
	}
	if err := s.Verify(p.fp); err != nil {
		return nil, fmt.Errorf("datalog: restore: %w", err)
	}
	return &Model{db: s.DB, schemas: p.en.Schemas, en: p.en, stats: coreStats(s.Stats)}, nil
}

// RestoreFile is Restore reading the checkpoint from a file.
func (p *Program) RestoreFile(path string) (*Model, error) {
	m, _, err := p.RestoreFileWatermark(path)
	return m, err
}

// RestoreFileWatermark is RestoreFile additionally returning the
// commit-sequence watermark stamped by WriteSnapshotWatermark (0 for
// engine checkpoints and version-1 snapshots).
func (p *Program) RestoreFileWatermark(path string) (*Model, uint64, error) {
	s, err := snapshot.ReadFile(path, p.en.Schemas)
	if err != nil {
		if errors.Is(err, snapshot.ErrCorrupt) || errors.Is(err, snapshot.ErrVersion) {
			return nil, 0, fmt.Errorf("datalog: restore %s: %w", path, err)
		}
		return nil, 0, err
	}
	if err := s.Verify(p.fp); err != nil {
		return nil, 0, fmt.Errorf("datalog: restore %s: %w", path, err)
	}
	m := &Model{db: s.DB, schemas: p.en.Schemas, en: p.en, stats: coreStats(s.Stats)}
	return m, s.Seq, nil
}

// Resume continues the fixpoint from a restored (or interrupted) model
// until convergence, returning the same least model an uninterrupted
// solve would have computed — sound because any checkpointed
// interpretation lies between the EDB and the least model of a
// monotonic program. Stats continue from the model's cumulative totals.
// Options (including WithCheckpoint) apply as in SolveContext.
func (p *Program) Resume(ctx context.Context, m *Model, opts ...SolveOption) (*Model, Stats, error) {
	cfg := solveConfig{lim: p.lim}
	for _, o := range opts {
		o(&cfg)
	}
	db, stats, err := p.en.Resume(ctx, m.db, p.limitsFor(cfg), m.stats)
	var out *Model
	if db != nil {
		out = &Model{db: db, schemas: p.en.Schemas, en: p.en, stats: stats}
	}
	return out, stats, err
}
