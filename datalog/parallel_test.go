package datalog_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/datalog"
	"repro/internal/faults"
)

// The parallel engine's determinism contract (docs/ARCHITECTURE.md):
// for every program and every parallelism level, the model, the
// insertion order of facts, the recorded derivations and the Stats
// totals are byte-identical to the sequential engine's. These tests
// enforce the contract differentially over every shipped example
// program; timing fields (Nanos) are the only tolerated difference.

// normStats strips wall-clock time from a Stats, the one field the
// determinism contract exempts.
func normStats(s datalog.Stats) datalog.Stats {
	n := s.Clone()
	for i := range n.Rules {
		n.Rules[i].Nanos = 0
	}
	for i := range n.Comps {
		n.Comps[i].Nanos = 0
	}
	return n
}

// factFingerprint renders every predicate's facts in insertion order —
// the order Rows() reports — so reorderings invisible in the sorted
// model rendering still fail the comparison.
func factFingerprint(m *datalog.Model) string {
	var b strings.Builder
	for _, pred := range m.Preds() {
		fmt.Fprintf(&b, "%s:\n", pred)
		for _, row := range m.Facts(pred) {
			fmt.Fprintf(&b, "  %v\n", row)
		}
	}
	return b.String()
}

// traceFingerprint renders the recorded derivation (rule plus supports)
// of every fact in the model. Requires Trace to be on.
func traceFingerprint(t *testing.T, p *datalog.Program, m *datalog.Model) string {
	t.Helper()
	hasCost := map[string]bool{}
	for _, d := range p.Predicates() {
		hasCost[d.Name] = d.HasCost
	}
	var b strings.Builder
	for _, pred := range m.Preds() {
		for _, row := range m.Facts(pred) {
			args := row
			if hasCost[pred] {
				args = row[:len(row)-1]
			}
			rule, supports, ok := m.Explain(pred, args...)
			fmt.Fprintf(&b, "%s%v ok=%v rule=%q supports=%v\n", pred, args, ok, rule, supports)
		}
	}
	return b.String()
}

// solveParallel loads one example with tracing and the given worker
// count and solves it.
func solveParallel(t *testing.T, name string, par int) (*datalog.Program, *datalog.Model, datalog.Stats) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join(exampleDir, name))
	if err != nil {
		t.Fatal(err)
	}
	opts := exampleOptions(name)
	opts.Trace = true
	opts.Parallelism = par
	p, err := datalog.Load(string(src), opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	m, stats, err := p.Solve()
	if err != nil {
		t.Fatalf("%s at parallelism %d: %v", name, par, err)
	}
	return p, m, stats
}

// TestParallelDeterminism solves every shipped example program
// (omega.mdl diverges by design and is excluded) sequentially and at
// parallelism 2 and GOMAXPROCS, asserting model, fact order, traces
// and stats agree exactly.
func TestParallelDeterminism(t *testing.T) {
	entries, err := os.ReadDir(exampleDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".mdl") || name == "omega.mdl" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			seqP, seqM, seqStats := solveParallel(t, name, 1)
			seqModel := seqM.String()
			seqFacts := factFingerprint(seqM)
			seqTrace := traceFingerprint(t, seqP, seqM)
			for _, par := range []int{2, runtime.GOMAXPROCS(0)} {
				parP, parM, parStats := solveParallel(t, name, par)
				if got := parM.String(); got != seqModel {
					t.Fatalf("parallelism %d model differs:\n%s\nwant:\n%s", par, got, seqModel)
				}
				if got := factFingerprint(parM); got != seqFacts {
					t.Fatalf("parallelism %d fact order differs:\n%s\nwant:\n%s", par, got, seqFacts)
				}
				if got := traceFingerprint(t, parP, parM); got != seqTrace {
					t.Fatalf("parallelism %d traces differ:\n%s\nwant:\n%s", par, got, seqTrace)
				}
				if got, want := fmt.Sprintf("%+v", normStats(parStats)), fmt.Sprintf("%+v", normStats(seqStats)); got != want {
					t.Fatalf("parallelism %d stats differ:\n%s\nwant:\n%s", par, got, want)
				}
			}
		})
	}
}

// TestParallelSolveMoreChain extends a model twice through the
// incremental path at each parallelism level; the chained models and
// cumulative stats must match the sequential chain exactly.
func TestParallelSolveMoreChain(t *testing.T) {
	chain := func(par int) (string, string, datalog.Stats) {
		t.Helper()
		p, m, _ := solveParallel(t, "shortestpath.mdl", par)
		m2, _, err := p.SolveMore(m,
			datalog.NewFact("arc", datalog.Sym("f"), datalog.Sym("a"), datalog.Num(1)),
			datalog.NewFact("arc", datalog.Sym("e"), datalog.Sym("f"), datalog.Num(2)))
		if err != nil {
			t.Fatalf("parallelism %d first SolveMore: %v", par, err)
		}
		m3, stats, err := p.SolveMore(m2,
			datalog.NewFact("arc", datalog.Sym("f"), datalog.Sym("d"), datalog.Num(1)))
		if err != nil {
			t.Fatalf("parallelism %d second SolveMore: %v", par, err)
		}
		return m3.String(), factFingerprint(m3), stats
	}
	seqModel, seqFacts, seqStats := chain(1)
	for _, par := range []int{2, runtime.GOMAXPROCS(0)} {
		parModel, parFacts, parStats := chain(par)
		if parModel != seqModel {
			t.Fatalf("parallelism %d chained model differs:\n%s\nwant:\n%s", par, parModel, seqModel)
		}
		if parFacts != seqFacts {
			t.Fatalf("parallelism %d chained fact order differs:\n%s\nwant:\n%s", par, parFacts, seqFacts)
		}
		if got, want := fmt.Sprintf("%+v", normStats(parStats)), fmt.Sprintf("%+v", normStats(seqStats)); got != want {
			t.Fatalf("parallelism %d chained stats differ:\n%s\nwant:\n%s", par, got, want)
		}
	}
}

// TestParallelKillResume interrupts a parallel solve (injected panic at
// a fixpoint round boundary, simulating a crash) with checkpointing on,
// then restores the last durable checkpoint and resumes — still in
// parallel — asserting the final model matches an uninterrupted
// sequential solve. Component boundaries and round boundaries are the
// only checkpoint cut points, so every checkpoint a parallel run
// flushes must be a consistent state of the global database.
func TestParallelKillResume(t *testing.T) {
	for _, name := range []string{"shortestpath.mdl", "companycontrol.mdl"} {
		t.Run(name, func(t *testing.T) {
			_, full, _ := solveParallel(t, name, 1)

			src, err := os.ReadFile(filepath.Join(exampleDir, name))
			if err != nil {
				t.Fatal(err)
			}
			opts := exampleOptions(name)
			opts.Parallelism = 4
			p, err := datalog.Load(string(src), opts)
			if err != nil {
				t.Fatal(err)
			}
			ckpt := filepath.Join(t.TempDir(), "model.ckpt")
			faults.Arm(faults.Fault{Point: faults.CoreRound, After: 2, Panic: true})
			defer faults.Reset()
			_, _, err = p.SolveContext(context.Background(), nil,
				datalog.WithCheckpoint(datalog.FileCheckpoint(ckpt), 1))
			if !errors.Is(err, datalog.ErrInternal) {
				t.Fatalf("injected crash: err = %v, want ErrInternal", err)
			}
			faults.Reset()

			restored, err := p.RestoreFile(ckpt)
			if err != nil {
				t.Fatalf("restore after crash: %v", err)
			}
			m, _, err := p.Resume(context.Background(), restored)
			if err != nil {
				t.Fatalf("resume after crash: %v", err)
			}
			if m.String() != full.String() {
				t.Fatalf("resumed parallel model differs from sequential solve:\n%s\nwant:\n%s", m, full)
			}
		})
	}
}

// TestParallelWorkerPanicContained arms the worker-entry fault point:
// a panic on a scheduler worker goroutine must surface as a structured
// ErrInternal from Solve — never crash the process and never hang the
// scheduler — and the engine must remain usable afterwards.
func TestParallelWorkerPanicContained(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(exampleDir, "shortestpath.mdl"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := datalog.Load(string(src), datalog.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	faults.Arm(faults.Fault{Point: faults.CoreParallelWorker, Panic: true, Sticky: true})
	defer faults.Reset()
	_, _, err = p.Solve()
	if !errors.Is(err, datalog.ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	var ee *datalog.EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("err %T is not a structured *EngineError", err)
	}
	if len(ee.Stack) == 0 {
		t.Fatal("contained panic must carry the worker stack")
	}
	// The engine must stay usable: disarm and the same Program solves.
	faults.Reset()
	if _, _, err := p.Solve(); err != nil {
		t.Fatalf("solve after contained crash: %v", err)
	}
}
