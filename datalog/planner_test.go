package datalog_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/datalog"
)

// The planner contract (docs/PLANNER.md): the cost-based planner is a
// pure physical optimization — for every program, every executor, every
// parallelism level and every incremental chain, the model, fact
// insertion order, traces, checkpoint bytes and the Stats ledger's
// Firings/Derived/Rounds/Components totals are byte-identical to the
// syntactic left-to-right plan. Probes (and Nanos) are exempt: a
// different join order legitimately probes different indexes — that is
// the point of planning.

// normPlanStats strips the two fields the planner contract exempts:
// wall-clock time and index-probe counts.
func normPlanStats(s datalog.Stats) datalog.Stats {
	n := normStats(s)
	n.Probes = 0
	for i := range n.Rules {
		n.Rules[i].Probes = 0
	}
	for i := range n.Comps {
		n.Comps[i].Probes = 0
	}
	return n
}

// solvePlanned loads one example with tracing and the given planner,
// executor and worker count, and solves it.
func solvePlanned(t *testing.T, name string, pl datalog.Plan, exe datalog.Executor, par int) (*datalog.Program, *datalog.Model, datalog.Stats) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join(exampleDir, name))
	if err != nil {
		t.Fatal(err)
	}
	opts := exampleOptions(name)
	opts.Trace = true
	opts.Plan = pl
	opts.Executor = exe
	opts.Parallelism = par
	p, err := datalog.Load(string(src), opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	m, stats, err := p.Solve()
	if err != nil {
		t.Fatalf("%s plan=%v executor=%v parallelism=%d: %v", name, pl, exe, par, err)
	}
	return p, m, stats
}

// TestPlannerDifferential solves every shipped example program
// (omega.mdl diverges by design and is covered separately) under the
// syntactic plan and under the cost plan, on both executors at
// parallelism 1, 2 and GOMAXPROCS, asserting model, fact order, traces
// and the exempt-normalized stats agree exactly.
func TestPlannerDifferential(t *testing.T) {
	entries, err := os.ReadDir(exampleDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".mdl") || name == "omega.mdl" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			refP, refM, refStats := solvePlanned(t, name, datalog.PlanSyntactic, datalog.ExecutorTuple, 1)
			refModel := refM.String()
			refFacts := factFingerprint(refM)
			refTrace := traceFingerprint(t, refP, refM)
			refNorm := fmt.Sprintf("%+v", normPlanStats(refStats))
			for _, exe := range []datalog.Executor{datalog.ExecutorTuple, datalog.ExecutorStream} {
				for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
					costP, costM, costStats := solvePlanned(t, name, datalog.PlanCost, exe, par)
					tag := fmt.Sprintf("cost executor=%v parallelism=%d", exe, par)
					if got := costM.String(); got != refModel {
						t.Fatalf("%s model differs:\n%s\nwant:\n%s", tag, got, refModel)
					}
					if got := factFingerprint(costM); got != refFacts {
						t.Fatalf("%s fact order differs:\n%s\nwant:\n%s", tag, got, refFacts)
					}
					if got := traceFingerprint(t, costP, costM); got != refTrace {
						t.Fatalf("%s traces differ:\n%s\nwant:\n%s", tag, got, refTrace)
					}
					if got := fmt.Sprintf("%+v", normPlanStats(costStats)); got != refNorm {
						t.Fatalf("%s stats differ:\n%s\nwant:\n%s", tag, got, refNorm)
					}
				}
			}
		})
	}
}

// TestWithPlanOption: the per-solve override produces the same model as
// the Load-time option, from one loaded program.
func TestWithPlanOption(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(exampleDir, "shortestpath.mdl"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := datalog.Load(string(src), datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	syn, _, err := p.SolveContext(ctx, nil, datalog.WithPlan(datalog.PlanSyntactic))
	if err != nil {
		t.Fatal(err)
	}
	cost, _, err := p.SolveContext(ctx, nil, datalog.WithPlan(datalog.PlanCost))
	if err != nil {
		t.Fatal(err)
	}
	if cost.String() != syn.String() {
		t.Fatalf("WithPlan(cost) model differs:\n%s\nwant:\n%s", cost, syn)
	}
}

// TestPlannerDivergenceParity runs the intentionally divergent
// omega.mdl under both planners: the ω-limit detector must trip either
// way with identical structured errors and an identical partial model.
func TestPlannerDivergenceParity(t *testing.T) {
	run := func(pl datalog.Plan) (string, string) {
		t.Helper()
		src, err := os.ReadFile(filepath.Join(exampleDir, "omega.mdl"))
		if err != nil {
			t.Fatal(err)
		}
		opts := exampleOptions("omega.mdl")
		opts.Plan = pl
		opts.DivergenceStreak = 50
		p, err := datalog.Load(string(src), opts)
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := p.Solve()
		if !errors.Is(err, datalog.ErrDiverged) {
			t.Fatalf("plan=%v err = %v, want ErrDiverged", pl, err)
		}
		if m == nil {
			t.Fatalf("plan=%v divergence must return the partial model", pl)
		}
		return err.Error(), m.String()
	}
	synErr, synModel := run(datalog.PlanSyntactic)
	costErr, costModel := run(datalog.PlanCost)
	if costErr != synErr {
		t.Fatalf("divergence errors differ:\ncost:      %s\nsyntactic: %s", costErr, synErr)
	}
	if costModel != synModel {
		t.Fatalf("partial models differ:\ncost:\n%s\nsyntactic:\n%s", costModel, synModel)
	}
}

// TestPlannerSolveMoreChain extends a model twice through the
// incremental path under each planner; the chained models and
// exempt-normalized cumulative stats must match exactly. Incremental
// seeds disable subplan sharing but keep cost ordering, so this
// exercises the planner's SolveMore entry point.
func TestPlannerSolveMoreChain(t *testing.T) {
	chain := func(pl datalog.Plan) (string, string, datalog.Stats) {
		t.Helper()
		p, m, _ := solvePlanned(t, "shortestpath.mdl", pl, datalog.ExecutorDefault, 1)
		m2, _, err := p.SolveMore(m,
			datalog.NewFact("arc", datalog.Sym("f"), datalog.Sym("a"), datalog.Num(1)),
			datalog.NewFact("arc", datalog.Sym("e"), datalog.Sym("f"), datalog.Num(2)))
		if err != nil {
			t.Fatalf("plan=%v first SolveMore: %v", pl, err)
		}
		m3, stats, err := p.SolveMore(m2,
			datalog.NewFact("arc", datalog.Sym("f"), datalog.Sym("d"), datalog.Num(1)))
		if err != nil {
			t.Fatalf("plan=%v second SolveMore: %v", pl, err)
		}
		return m3.String(), factFingerprint(m3), stats
	}
	refModel, refFacts, refStats := chain(datalog.PlanSyntactic)
	costModel, costFacts, costStats := chain(datalog.PlanCost)
	if costModel != refModel {
		t.Fatalf("cost chained model differs:\n%s\nwant:\n%s", costModel, refModel)
	}
	if costFacts != refFacts {
		t.Fatalf("cost chained fact order differs:\n%s\nwant:\n%s", costFacts, refFacts)
	}
	if got, want := fmt.Sprintf("%+v", normPlanStats(costStats)), fmt.Sprintf("%+v", normPlanStats(refStats)); got != want {
		t.Fatalf("cost chained stats differ:\n%s\nwant:\n%s", got, want)
	}
}

// TestPlannerCheckpointParity checkpoints a solve under each planner at
// every round boundary; the final checkpoint bytes must be
// byte-identical (the durable format must not leak the plan).
func TestPlannerCheckpointParity(t *testing.T) {
	snap := func(pl datalog.Plan) []byte {
		t.Helper()
		src, err := os.ReadFile(filepath.Join(exampleDir, "shortestpath.mdl"))
		if err != nil {
			t.Fatal(err)
		}
		opts := exampleOptions("shortestpath.mdl")
		opts.Plan = pl
		p, err := datalog.Load(string(src), opts)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "model.ckpt")
		if _, _, err := p.SolveContext(context.Background(), nil, datalog.WithCheckpoint(datalog.FileCheckpoint(path), 1)); err != nil {
			t.Fatalf("plan=%v solve: %v", pl, err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	syn := snap(datalog.PlanSyntactic)
	cost := snap(datalog.PlanCost)
	if string(syn) != string(cost) {
		t.Fatalf("checkpoint bytes differ between planners (%d vs %d bytes)", len(syn), len(cost))
	}
}

// TestPlannerResumeParity resumes a mid-solve checkpoint under the cost
// planner: a checkpoint written by the syntactic plan restores and
// finishes under the cost plan (and vice versa) with the same final
// model — resumability must not depend on the plan that wrote the
// snapshot.
func TestPlannerResumeParity(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(exampleDir, "shortestpath.mdl"))
	if err != nil {
		t.Fatal(err)
	}
	final := func(writePl, resumePl datalog.Plan) string {
		t.Helper()
		opts := exampleOptions("shortestpath.mdl")
		opts.Plan = writePl
		p, err := datalog.Load(string(src), opts)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "model.ckpt")
		ctx := context.Background()
		if _, _, err := p.SolveContext(ctx, nil, datalog.WithCheckpoint(datalog.FileCheckpoint(path), 1)); err != nil {
			t.Fatalf("plan=%v checkpointed solve: %v", writePl, err)
		}
		restored, err := p.RestoreFile(path)
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := p.Resume(ctx, restored, datalog.WithPlan(resumePl))
		if err != nil {
			t.Fatalf("resume plan=%v: %v", resumePl, err)
		}
		return m.String()
	}
	ref := final(datalog.PlanSyntactic, datalog.PlanSyntactic)
	if got := final(datalog.PlanSyntactic, datalog.PlanCost); got != ref {
		t.Fatalf("syntactic→cost resume differs:\n%s\nwant:\n%s", got, ref)
	}
	if got := final(datalog.PlanCost, datalog.PlanSyntactic); got != ref {
		t.Fatalf("cost→syntactic resume differs:\n%s\nwant:\n%s", got, ref)
	}
	if got := final(datalog.PlanCost, datalog.PlanCost); got != ref {
		t.Fatalf("cost→cost resume differs:\n%s\nwant:\n%s", got, ref)
	}
}

// cseProgram has two same-component rules with an identical frozen
// two-scan prefix (knows ⋈ lives) — the shape the planner's
// common-subplan detection buffers once and replays into both rules.
// (Sharing is scoped to one component's planning pass, so the rules
// define the same predicate.)
const cseProgram = `
a(X, Z) :- knows(X, Y), lives(Y, Z), likes(Z).
a(X, Z) :- knows(X, Y), lives(Y, Z), single(Z).

knows(ann, bea).  knows(ann, cal).  knows(bea, cal).
knows(cal, dee).  knows(dee, ann).  knows(bea, dee).
lives(bea, oslo). lives(cal, rome). lives(dee, rome).
lives(ann, oslo). lives(cal, kyiv).
likes(rome). likes(kyiv).
single(oslo). single(rome).
`

// TestPlannerCSEDifferential proves the shared pipeline engages on the
// synthetic program (PlanShared in the profile) and that its model,
// fact order and traces are byte-identical to the syntactic plan's at
// every parallelism level.
func TestPlannerCSEDifferential(t *testing.T) {
	solve := func(pl datalog.Plan, par int) (*datalog.Program, *datalog.Model) {
		t.Helper()
		p, err := datalog.Load(cseProgram, datalog.Options{Trace: true, Plan: pl, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := p.Solve()
		if err != nil {
			t.Fatalf("plan=%v parallelism=%d: %v", pl, par, err)
		}
		return p, m
	}
	refP, refM := solve(datalog.PlanSyntactic, 1)
	refModel, refFacts := refM.String(), factFingerprint(refM)
	refTrace := traceFingerprint(t, refP, refM)
	shared := false
	for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		costP, costM := solve(datalog.PlanCost, par)
		if got := costM.String(); got != refModel {
			t.Fatalf("parallelism %d model differs:\n%s\nwant:\n%s", par, got, refModel)
		}
		if got := factFingerprint(costM); got != refFacts {
			t.Fatalf("parallelism %d fact order differs:\n%s\nwant:\n%s", par, got, refFacts)
		}
		if got := traceFingerprint(t, costP, costM); got != refTrace {
			t.Fatalf("parallelism %d traces differ:\n%s\nwant:\n%s", par, got, refTrace)
		}
		for _, rp := range costP.Profile().Rules {
			if rp.PlanShared > 0 {
				shared = true
			}
		}
	}
	if !shared {
		t.Fatal("cost plan never shared the common knows⋈lives prefix (PlanShared == 0 everywhere)")
	}
}
