package datalog_test

import (
	"fmt"

	"repro/datalog"
)

// The paper's shortest-path program (Example 2.6) on a cyclic graph —
// the case recursion-through-aggregation was invented for.
func ExampleLoad() {
	p, err := datalog.Load(`
.cost arc/3  : minreal.
.cost path/4 : minreal.
.cost s/3    : minreal.
.ic :- arc(direct, Z, C).

path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
`, datalog.Options{})
	if err != nil {
		panic(err)
	}
	m, _, err := p.Solve(
		datalog.NewFact("arc", datalog.Sym("a"), datalog.Sym("b"), datalog.Num(1)),
		datalog.NewFact("arc", datalog.Sym("b"), datalog.Sym("b"), datalog.Num(0)),
	)
	if err != nil {
		panic(err)
	}
	c, _ := m.Cost("s", datalog.Sym("a"), datalog.Sym("b"))
	fmt.Println("s(a,b) =", c)
	// Output: s(a,b) = 1
}

// Incremental maintenance: a new arc improves existing answers without
// re-solving from scratch.
func ExampleProgram_SolveMore() {
	p := datalog.MustLoad(`
.cost arc/3  : minreal.
.cost path/4 : minreal.
.cost s/3    : minreal.
.ic :- arc(direct, Z, C).

path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
`, datalog.Options{})
	base, _, err := p.Solve(
		datalog.NewFact("arc", datalog.Sym("a"), datalog.Sym("b"), datalog.Num(4)),
		datalog.NewFact("arc", datalog.Sym("b"), datalog.Sym("c"), datalog.Num(4)),
	)
	if err != nil {
		panic(err)
	}
	inc, _, err := p.SolveMore(base, datalog.NewFact("arc", datalog.Sym("a"), datalog.Sym("c"), datalog.Num(1)))
	if err != nil {
		panic(err)
	}
	before, _ := base.Cost("s", datalog.Sym("a"), datalog.Sym("c"))
	after, _ := inc.Cost("s", datalog.Sym("a"), datalog.Sym("c"))
	fmt.Println(before, "->", after)
	// Output: 8 -> 1
}

// Classify places a program on the paper's §5 ladder.
func ExampleProgram_Classify() {
	p := datalog.MustLoad(`
.cost requires/2 : countnat.
coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
kc(X, Y)  :- knows(X, Y), coming(Y).
`, datalog.Options{})
	cl := p.Classify()
	fmt.Println("admissible:", cl.Admissible)
	fmt.Println("aggregate stratified:", cl.AggregateStratified)
	fmt.Println("r-monotonic:", cl.RMonotonic)
	// Output:
	// admissible: true
	// aggregate stratified: false
	// r-monotonic: false
}
