package datalog

import (
	"strings"
	"sync"
	"testing"
)

// registerTestExtensions runs once: the aggregate/lattice registries are
// global.
var registerTestExtensions = sync.OnceFunc(func() {
	RegisterSetUniverse("colors", Sym("red"), Sym("green"), Sym("blue"))
	RegisterIntersection("commoncolors", Sym("red"), Sym("green"), Sym("blue"))
	RegisterConnectsProperty("srcdst", "src", "dst")
	RegisterPathLengthProperty("long3", 3)
	RegisterGraphProperty("has_any_edge", func(edges []Value) bool {
		return len(edges) > 0
	})
})

func TestRegisterSetUniverseAndIntersection(t *testing.T) {
	registerTestExtensions()
	// The aggregate's domain lattice must match the aggregated cost
	// declaration (well-typedness, §4.2) — both use the registered
	// commoncolors_dom; the plain "colors" union lattice is exercised
	// separately below.
	src := `
.cost likes/2 : commoncolors_dom.
.cost consensus/1 : commoncolors_dom.
likes(a, {red, green}).
likes(b, {red, blue}).
consensus(S) :- S ?= commoncolors C : likes(X, C).
`
	p, err := Load(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	s, ok := m.Cost("consensus")
	if !ok || s.String() != "{red}" {
		t.Fatalf("consensus = %v (%v), want {red}", s, ok)
	}
	// The bounded union lattice registered by RegisterSetUniverse.
	p2, err := Load(`
.cost palette/2 : colors.
palette(ui, {red, blue}).
`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := p2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m2.Cost("palette", Sym("ui")); !ok || v.String() != "{blue, red}" {
		t.Fatalf("palette = %v (%v)", v, ok)
	}
	// Values outside the declared universe are rejected.
	if _, err := Load(`
.cost palette/2 : colors.
palette(ui, {mauve}).
`, Options{}); err == nil {
		t.Fatal("out-of-universe set must be rejected")
	}
}

func TestRegisterGraphProperties(t *testing.T) {
	registerTestExtensions()
	src := `
.cost seg/2 : setunion.
.cost conn/1 : boolor.
.cost long/1 : boolor.
.cost any/1 : boolor.
seg(s1, {"src->m", "m->n"}).
seg(s2, {"n->dst"}).
conn(B) :- B = srcdst E : seg(S, E).
long(B) :- B = long3 E : seg(S, E).
any(B)  :- B = has_any_edge E : seg(S, E).
`
	p, err := Load(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for pred, want := range map[string]bool{"conn": true, "long": true, "any": true} {
		v, ok := m.Cost(pred)
		b, _ := v.Truth()
		if !ok || b != want {
			t.Errorf("%s = %v (%v), want %v", pred, v, ok, want)
		}
	}
}

func TestEdgeHelpers(t *testing.T) {
	e := Edge("a", "b")
	u, v, ok := EdgeEnds(e)
	if !ok || u != "a" || v != "b" {
		t.Fatalf("EdgeEnds = %q %q %v", u, v, ok)
	}
	if _, _, ok := EdgeEnds(Sym("nodashes")); ok {
		t.Fatal("non-edge must not split")
	}
	if _, _, ok := EdgeEnds(Num(3)); ok {
		t.Fatal("numbers are not edges")
	}
}

func TestMustLoadPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "datalog:") {
			t.Fatalf("recover = %v", r)
		}
	}()
	MustLoad("p(X :- broken.", Options{})
}
