// Package datalog is the public API of the library: a deductive-database
// engine implementing the monotonic aggregation semantics of Ross &
// Sagiv, "Monotonic Aggregation in Deductive Databases" (PODS 1992).
//
// Programs are written in a Datalog dialect with aggregate subgoals over
// complete-lattice cost domains:
//
//	src := `
//	.cost arc/3 : minreal.
//	.cost path/4 : minreal.
//	.cost s/3 : minreal.
//	.ic :- arc(direct, Z, C).
//	path(X, direct, Y, C) :- arc(X, Y, C).
//	path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
//	s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
//	`
//	p, err := datalog.Load(src, datalog.Options{})
//	m, _, err := p.Solve(
//	    datalog.NewFact("arc", datalog.Sym("a"), datalog.Sym("b"), datalog.Num(1)),
//	    datalog.NewFact("arc", datalog.Sym("b"), datalog.Sym("c"), datalog.Num(2)),
//	)
//	cost, ok := m.Cost("s", datalog.Sym("a"), datalog.Sym("c")) // 3
//
// Load statically verifies the program: range restriction (safety),
// conflict-freedom (cost consistency) and admissibility (monotonicity),
// so that Solve is guaranteed to compute the unique minimal model.
package datalog

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/snapshot"
	"repro/internal/val"
)

// Error classes, testable with errors.Is. ErrParse and ErrStatic
// classify Load failures; the rest classify Solve failures, which also
// carry a full *EngineError (use errors.As) with the component, round,
// last-improved atom, and — for ErrDiverged — the offending aggregate
// group and its recent cost trajectory.
var (
	// ErrParse marks a syntax error in the program text.
	ErrParse = errors.New("datalog: parse error")
	// ErrStatic marks a failed static analysis (schema, safety,
	// conflict-freedom, admissibility).
	ErrStatic = errors.New("datalog: static check failed")
	// ErrCanceled marks a canceled or timed-out solve.
	ErrCanceled = core.ErrCanceled
	// ErrBudgetExceeded marks a breached derivation budget.
	ErrBudgetExceeded = core.ErrBudgetExceeded
	// ErrDiverged marks non-convergent recursion (a fixpoint at ω,
	// Example 5.1, or an exhausted round bound).
	ErrDiverged = core.ErrDiverged
	// ErrInternal marks an engine panic contained by the recover
	// boundary instead of crashing the process.
	ErrInternal = core.ErrInternal
)

// EngineError is the structured evaluation failure (see core.EngineError).
type EngineError = core.EngineError

// Divergence describes a detected ω-limit signature (see core.Divergence).
type Divergence = core.Divergence

// Strategy selects the fixpoint algorithm.
type Strategy = core.Strategy

// The fixpoint strategies: SemiNaive (default) refires only rule
// instances touching changed atoms; Naive recomputes T_P per round.
const (
	SemiNaive = core.SemiNaive
	Naive     = core.Naive
)

// Executor selects the rule-body evaluation backend.
type Executor = core.Executor

// The executors: ExecutorStream runs compiled streaming operator
// pipelines — lazy iterators with index-aware scans and delta-driven
// probes — over pooled register machines; ExecutorTuple (currently the
// default) is the recursive tuple-at-a-time interpreter. Both produce
// byte-identical models, traces and stats; the knob exists for
// benchmarking, differential testing and as an escape hatch.
const (
	ExecutorDefault = core.ExecutorDefault
	ExecutorTuple   = core.ExecutorTuple
	ExecutorStream  = core.ExecutorStream
)

// ParseExecutor maps the command-line spellings "stream" and "tuple"
// (and "" for the default) to an Executor.
func ParseExecutor(s string) (Executor, error) {
	switch s {
	case "":
		return ExecutorDefault, nil
	case "stream":
		return ExecutorStream, nil
	case "tuple":
		return ExecutorTuple, nil
	}
	return ExecutorDefault, fmt.Errorf("datalog: unknown executor %q (want \"stream\" or \"tuple\")", s)
}

// Plan selects the rule planner.
type Plan = core.Plan

// The planners: PlanSyntactic (currently the default) evaluates each
// rule body in its written left-to-right subgoal order; PlanCost orders
// subgoals by estimated selectivity read from the live relation indexes,
// pre-sizes aggregate group tables, shares common subplans across rules,
// and re-plans between rounds when observed growth diverges from the
// estimates. Both planners produce byte-identical models, traces and
// stats totals (see docs/PLANNER.md for the cost model and the
// equivalence contract).
const (
	PlanDefault   = core.PlanDefault
	PlanSyntactic = core.PlanSyntactic
	PlanCost      = core.PlanCost
)

// ParsePlan maps the command-line spellings "cost" and "syntactic" (and
// "" for the default) to a Plan.
func ParsePlan(s string) (Plan, error) {
	switch s {
	case "":
		return PlanDefault, nil
	case "cost":
		return PlanCost, nil
	case "syntactic":
		return PlanSyntactic, nil
	}
	return PlanDefault, fmt.Errorf("datalog: unknown plan %q (want \"cost\" or \"syntactic\")", s)
}

// Options configures evaluation; the zero value is a good default.
type Options struct {
	Strategy Strategy
	// MaxRounds bounds fixpoint iteration per program component
	// (default 1<<20).
	MaxRounds int
	// Epsilon treats numeric cost improvements below it as convergence;
	// required for programs whose fixpoint lies at ω (Example 5.1).
	Epsilon float64
	// SkipChecks disables static verification. The minimal model is then
	// no longer guaranteed to exist or be unique; intended for studying
	// non-monotonic programs.
	SkipChecks bool
	// WFSFallback enables the full iterated construction of §6.3 of the
	// paper: components that recurse through negation (and are therefore
	// not admissible) are evaluated under the well-founded semantics;
	// their well-founded model must be two-valued, and feeds the
	// monotonic components above.
	WFSFallback bool
	// Trace records provenance for every derived tuple (the rule and
	// ground body of its last improvement), queryable with
	// Model.Explain/ExplainTree. Costs extra memory per tuple.
	Trace bool
	// MaxFacts caps tuple derivations per solve (0 = unlimited); on
	// breach Solve returns ErrBudgetExceeded with the partial model.
	MaxFacts int64
	// MaxDuration is a per-solve wall-clock deadline (0 = none); on
	// expiry Solve returns ErrCanceled with the partial model.
	MaxDuration time.Duration
	// CheckEvery is the cancellation-poll granularity in rule firings
	// (default 4096).
	CheckEvery int
	// DivergenceStreak configures the ω-limit detector: fail with
	// ErrDiverged once one aggregate group improves this many
	// consecutive times with nothing else changing (0 = default 1000,
	// negative disables).
	DivergenceStreak int
	// Parallelism sets the evaluation worker-pool size: independent
	// program components run concurrently and each round's rules are
	// evaluated speculatively in parallel, with results merged so that
	// models, traces and stats totals are byte-identical to sequential
	// evaluation (see docs/ARCHITECTURE.md). 0 means one worker per
	// CPU (runtime.GOMAXPROCS); 1 selects exactly the sequential
	// engine.
	Parallelism int
	// Executor selects the rule-body evaluation backend (streaming
	// operator pipelines by default; ExecutorTuple for the
	// tuple-at-a-time interpreter). Both backends produce byte-identical
	// results.
	Executor Executor
	// Plan selects the rule planner (syntactic left-to-right order by
	// default; PlanCost for statistics-driven join ordering, presizing,
	// subplan sharing and adaptive re-planning). Both planners produce
	// byte-identical results; see docs/PLANNER.md.
	Plan Plan
	// Sink, when non-nil, receives the engine's typed event stream —
	// solve/component/round boundaries, rule passes, checkpoint
	// flushes and resource warnings. Events are emitted synchronously
	// from the evaluation loop; nil keeps the engine at full speed.
	Sink EventSink
	// Profile enables per-operator execution counters on the streaming
	// executor (rows in/out, probes, build sizes, Δ rows, aggregate
	// groups), retrievable with Program.Profile — the data behind
	// EXPLAIN ANALYZE. The tuple interpreter ignores it; the streaming
	// executor pays one predictable branch per counted event.
	Profile bool
}

// Stats reports evaluation work.
type Stats = core.Stats

// Program is a loaded, checked, compiled program.
type Program struct {
	prog *ast.Program
	en   *core.Engine
	lim  core.Limits
	fp   [32]byte // snapshot fingerprint of prog (source + declarations)
}

// Fingerprint returns the program's canonical fingerprint — the hash
// that tags its checkpoints and write-ahead log segments, so neither
// can ever be resumed against a different program.
func (p *Program) Fingerprint() [32]byte { return p.fp }

// Load parses, checks and compiles a program. Failures are classified:
// errors.Is(err, ErrParse) for syntax errors, errors.Is(err, ErrStatic)
// for failed static analyses.
func Load(src string, opts Options) (*Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrParse, err)
	}
	lim := core.Limits{
		MaxFacts:         opts.MaxFacts,
		MaxDuration:      opts.MaxDuration,
		CheckEvery:       opts.CheckEvery,
		DivergenceStreak: opts.DivergenceStreak,
		Parallelism:      opts.Parallelism,
		Executor:         opts.Executor,
		Plan:             opts.Plan,
	}
	en, err := core.New(prog, core.Options{
		Strategy:    opts.Strategy,
		MaxRounds:   opts.MaxRounds,
		Epsilon:     opts.Epsilon,
		SkipChecks:  opts.SkipChecks,
		WFSFallback: opts.WFSFallback,
		Trace:       opts.Trace,
		Sink:        opts.Sink,
		Profile:     opts.Profile,
		Limits:      lim,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrStatic, err)
	}
	return &Program{prog: prog, en: en, lim: lim, fp: snapshot.Fingerprint(prog)}, nil
}

// Classification reports where the program sits on the paper's §5 ladder.
type Classification struct {
	// Admissible programs (Definition 4.5) are monotonic: the least
	// fixpoint exists and Solve computes it. Reason is non-empty when
	// the check fails.
	Admissible bool
	Reason     string
	// RMonotonic: the restricted monotonicity of Mumick et al. (§5.2).
	RMonotonic bool
	// AggregateStratified: no recursion through aggregation (§5.1).
	AggregateStratified bool
	// NegationStratified: no recursion through negation.
	NegationStratified bool
}

// Classify returns the static classification.
func (p *Program) Classify() Classification {
	rep := p.en.Report
	c := Classification{
		Admissible:          rep.Admissible == nil,
		RMonotonic:          rep.RMonotonic == nil,
		AggregateStratified: rep.AggregateStratified,
		NegationStratified:  rep.NegationStratified,
	}
	if rep.Admissible != nil {
		c.Reason = rep.Admissible.Error()
	}
	return c
}

// Value is a constant of the rule language (or the Any wildcard, which
// is meaningful only as a Model.Match argument).
type Value struct {
	v    val.T
	wild bool
}

// Sym returns a symbol constant.
func Sym(s string) Value { return Value{v: val.Symbol(s)} }

// Num returns a numeric constant.
func Num(n float64) Value { return Value{v: val.Number(n)} }

// Bool returns a boolean constant (written 0/1 in rule text).
func Bool(b bool) Value { return Value{v: val.Boolean(b)} }

// Str returns a string constant.
func Str(s string) Value { return Value{v: val.String(s)} }

// SetOf returns a set constant.
func SetOf(elems ...Value) Value {
	raw := make([]val.T, len(elems))
	for i, e := range elems {
		raw[i] = e.v
	}
	return Value{v: val.T{Kind: val.SetKind, Set: val.NewSet(raw)}}
}

// String renders the value in rule-language syntax ("_" for Any).
func (v Value) String() string {
	if v.wild {
		return "_"
	}
	return v.v.String()
}

// Float returns the numeric value of a Num (or NaN-free zero otherwise).
func (v Value) Float() (float64, bool) {
	if v.v.Kind == val.Num {
		return v.v.N, true
	}
	return 0, false
}

// Truth returns the boolean value of a Bool.
func (v Value) Truth() (bool, bool) {
	if v.v.Kind == val.Bool {
		return v.v.B, true
	}
	return false, false
}

// Equal reports value equality (Any equals nothing, not even Any).
func (v Value) Equal(o Value) bool { return !v.wild && !o.wild && val.Equal(v.v, o.v) }

// Fact is a ground input fact. For a cost predicate the final value is
// the cost.
type Fact struct {
	Pred string
	Args []Value
}

// NewFact builds a fact.
func NewFact(pred string, args ...Value) Fact {
	return Fact{Pred: pred, Args: args}
}

// Model is a computed minimal model (or a partial interpretation, for
// interrupted solves and restored checkpoints). It carries the
// cumulative Stats of the work that produced it, so checkpoint/resume
// chains report running totals.
type Model struct {
	db      *relation.DB
	schemas ast.Schemas
	en      *core.Engine
	stats   Stats
}

// solveConfig collects per-call overrides; options mutate it rather
// than core.Limits directly so that checkpointing options can be bound
// to the program fingerprint at solve time.
type solveConfig struct {
	lim   core.Limits
	sink  CheckpointSink
	every int
}

// SolveOption tunes a single SolveContext call, overriding the
// program-wide limits set at Load.
type SolveOption func(*solveConfig)

// WithTimeout bounds the solve's wall clock; on expiry the solve stops
// with ErrCanceled and the partial model.
func WithTimeout(d time.Duration) SolveOption {
	return func(c *solveConfig) { c.lim.MaxDuration = d }
}

// WithMaxFacts caps tuple derivations for the solve (ErrBudgetExceeded
// on breach).
func WithMaxFacts(n int64) SolveOption {
	return func(c *solveConfig) { c.lim.MaxFacts = n }
}

// WithCheckEvery sets the cancellation-poll granularity in rule firings.
func WithCheckEvery(n int) SolveOption {
	return func(c *solveConfig) { c.lim.CheckEvery = n }
}

// WithDivergenceStreak sets the ω-limit detector threshold (negative
// disables it).
func WithDivergenceStreak(n int) SolveOption {
	return func(c *solveConfig) { c.lim.DivergenceStreak = n }
}

// WithParallelism overrides the evaluation worker-pool size for this
// solve (0 = one worker per CPU, 1 = sequential). The parallel engine
// is deterministic: the model, traces and stats totals are identical at
// every parallelism level.
func WithParallelism(n int) SolveOption {
	return func(c *solveConfig) { c.lim.Parallelism = n }
}

// WithExecutor overrides the rule-body execution backend for this
// solve. Both executors produce byte-identical models, traces and
// stats; ExecutorStream avoids per-tuple allocation.
func WithExecutor(e Executor) SolveOption {
	return func(c *solveConfig) { c.lim.Executor = e }
}

// WithPlan overrides the rule planner for this solve. Both planners
// produce byte-identical models, traces and stats totals; PlanCost
// reorders joins, pre-sizes hash tables and shares common subplans
// using live relation statistics (docs/PLANNER.md).
func WithPlan(pl Plan) SolveOption {
	return func(c *solveConfig) { c.lim.Plan = pl }
}

// Solve evaluates the program over the given extensional facts and
// returns its minimal model (Corollary 3.5).
func (p *Program) Solve(facts ...Fact) (*Model, Stats, error) {
	return p.SolveContext(context.Background(), facts)
}

// SolveContext is Solve with cooperative cancellation and per-call
// limit overrides. On cancellation, budget breach or detected
// divergence the error wraps the matching sentinel (ErrCanceled,
// ErrBudgetExceeded, ErrDiverged — test with errors.Is; extract the
// *EngineError with errors.As) and the returned model is non-nil,
// holding the partial interpretation computed so far.
func (p *Program) SolveContext(ctx context.Context, facts []Fact, opts ...SolveOption) (*Model, Stats, error) {
	edb := relation.NewDB(p.en.Schemas)
	for _, f := range facts {
		if err := addFact(edb, p.en.Schemas, f); err != nil {
			return nil, Stats{}, err
		}
	}
	cfg := solveConfig{lim: p.lim}
	for _, o := range opts {
		o(&cfg)
	}
	db, stats, err := p.en.SolveLimits(ctx, edb, p.limitsFor(cfg))
	var m *Model
	if db != nil {
		m = &Model{db: db, schemas: p.en.Schemas, en: p.en, stats: stats}
	}
	return m, stats, err
}

func addFact(edb *relation.DB, schemas ast.Schemas, f Fact) error {
	key := ast.MakePredKey(f.Pred, len(f.Args))
	pi := schemas.Info(key)
	if pi != nil && pi.HasCost {
		if len(f.Args) == 0 {
			return fmt.Errorf("datalog: fact %s lacks its cost argument", f.Pred)
		}
		cost, err := pi.L.Parse(f.Args[len(f.Args)-1].v)
		if err != nil {
			return fmt.Errorf("datalog: fact %s: %v", f.Pred, err)
		}
		args := make([]val.T, len(f.Args)-1)
		for i := range args {
			args[i] = f.Args[i].v
		}
		edb.Rel(key).InsertJoin(args, cost)
		return nil
	}
	args := make([]val.T, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.v
	}
	edb.Rel(key).InsertJoin(args, lattice.Elem{})
	return nil
}

// SolveMore extends a previously computed model with additional
// extensional facts, reusing the old model instead of re-solving from
// scratch — sound because monotonic programs only ever grow under fact
// insertion. It fails if any added predicate is used non-monotonically
// (under negation, or inside a pseudo-monotonic aggregate) or is defined
// by rules. The original model is unchanged.
func (p *Program) SolveMore(m *Model, facts ...Fact) (*Model, Stats, error) {
	return p.SolveMoreContext(context.Background(), m, facts)
}

// SolveMoreContext is SolveMore with cooperative cancellation; like
// SolveContext it returns the partially extended model alongside any
// limit-breach error.
func (p *Program) SolveMoreContext(ctx context.Context, m *Model, facts []Fact) (*Model, Stats, error) {
	added := relation.NewDB(p.en.Schemas)
	for _, f := range facts {
		if err := addFact(added, p.en.Schemas, f); err != nil {
			return nil, Stats{}, err
		}
	}
	db, stats, err := p.en.SolveMoreFrom(ctx, m.db, added, m.stats)
	var out *Model
	if db != nil {
		out = &Model{db: db, schemas: p.en.Schemas, en: p.en, stats: stats}
	}
	return out, stats, err
}

// SolveMoreObserved is SolveMoreContext with an additional event sink
// observing just this solve, layered on top of Options.Sink — how the
// serve tier attaches a per-request trace to one commit without
// re-configuring the program.
func (p *Program) SolveMoreObserved(ctx context.Context, m *Model, facts []Fact, sink EventSink) (*Model, Stats, error) {
	added := relation.NewDB(p.en.Schemas)
	for _, f := range facts {
		if err := addFact(added, p.en.Schemas, f); err != nil {
			return nil, Stats{}, err
		}
	}
	db, stats, err := p.en.SolveMoreObserved(ctx, m.db, added, m.stats, sink)
	var out *Model
	if db != nil {
		out = &Model{db: db, schemas: p.en.Schemas, en: p.en, stats: stats}
	}
	return out, stats, err
}

// Profile is the operator-level execution profile of the program's
// compiled rules (requires Options.Profile for live counters; without
// it the structure is returned with zero counters). Counters accumulate
// across solves; use Profile.Sub on two snapshots for a per-solve
// delta, and Profile.Annotate to graft per-rule timings from Stats.
type Profile = core.Profile

// RuleProfile is one rule's operator pipeline within a Profile.
type RuleProfile = core.RuleProfile

// OpStats is one operator's measured counters within a RuleProfile.
type OpStats = core.OpStats

// Profile snapshots the program's cumulative operator counters.
func (p *Program) Profile() *Profile { return p.en.Profile() }

// Profiling reports whether the program was loaded with Options.Profile.
func (p *Program) Profiling() bool { return p.en.Profiling() }

// Has reports whether the ground atom (without cost) is in the model.
func (m *Model) Has(pred string, args ...Value) bool {
	_, ok := m.lookup(pred, args)
	return ok
}

// Cost returns the cost value of the tuple identified by the non-cost
// arguments of a cost predicate.
func (m *Model) Cost(pred string, args ...Value) (Value, bool) {
	row, ok := m.lookup(pred, args)
	if !ok || !row.HasCost {
		return Value{}, false
	}
	return Value{v: row.Cost}, true
}

func (m *Model) lookup(pred string, args []Value) (relation.Row, bool) {
	raw := make([]val.T, len(args))
	for i, a := range args {
		raw[i] = a.v
	}
	for _, k := range m.db.Preds() {
		if k.Name() != pred {
			continue
		}
		pi := m.schemas.Info(k)
		if pi != nil && pi.NonCost() == len(args) {
			return m.db.Rel(k).GetOrDefault(raw)
		}
	}
	return relation.Row{}, false
}

// Facts returns every tuple of the predicate (cost appended last for
// cost predicates) in deterministic sorted order: ascending tuple-wise
// over the non-cost arguments, by kind and then by each kind's natural
// order (numbers numerically, symbols and strings lexicographically).
// The order depends only on the tuples present — never on insertion or
// derivation history — so output is stable across runs, resumed
// checkpoints and incremental extensions, and safe to use in golden
// tests and JSON responses.
func (m *Model) Facts(pred string) [][]Value {
	var out [][]Value
	for _, k := range m.db.Preds() {
		if k.Name() != pred {
			continue
		}
		for _, row := range m.db.Rel(k).Rows() {
			vs := make([]Value, 0, len(row.Args)+1)
			for _, a := range row.Args {
				vs = append(vs, Value{v: a})
			}
			if row.HasCost {
				vs = append(vs, Value{v: row.Cost})
			}
			out = append(out, vs)
		}
	}
	return out
}

// Len returns the number of stored tuples of the predicate.
func (m *Model) Len(pred string) int {
	n := 0
	for _, k := range m.db.Preds() {
		if k.Name() == pred {
			n += m.db.Rel(k).Len()
		}
	}
	return n
}

// String renders the whole model as sorted ground facts.
func (m *Model) String() string { return m.db.String() }

// Explain returns the rule and ground body that last derived the tuple
// identified by the non-cost arguments (requires Options.Trace).
func (m *Model) Explain(pred string, args ...Value) (rule string, supports []string, ok bool) {
	raw := make([]val.T, len(args))
	for i, a := range args {
		raw[i] = a.v
	}
	d, ok := m.en.Explain(pred, raw)
	if !ok {
		return "", nil, false
	}
	out := make([]string, len(d.Supports))
	for i, s := range d.Supports {
		out[i] = s.String()
	}
	return d.Rule, out, true
}

// ExplainTree renders a derivation tree for the tuple down to the given
// depth (requires Options.Trace).
func (m *Model) ExplainTree(pred string, depth int, args ...Value) string {
	raw := make([]val.T, len(args))
	for i, a := range args {
		raw[i] = a.v
	}
	return m.en.ExplainTree(m.db, pred, raw, depth)
}
