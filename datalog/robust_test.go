package datalog_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/datalog"
)

const spChain = `
.cost arc/3 : minreal.
.cost path/4 : minreal.
.cost s/3 : minreal.
.ic :- arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
arc(a, b, 1). arc(b, c, 1). arc(c, d, 1). arc(d, e, 1).
`

const omegaLimit = `
.cost p/2 : sumreal.
p(b, 1).
p(a, C) :- C ?= sum D : p(X, D).
`

func TestLoadErrorClasses(t *testing.T) {
	if _, err := datalog.Load("p(X :- q(X).", datalog.Options{}); !errors.Is(err, datalog.ErrParse) {
		t.Fatalf("parse failure: err = %v, want ErrParse", err)
	}
	// Unsafe rule: head variable never bound.
	if _, err := datalog.Load("p(X) :- q(Y).", datalog.Options{}); !errors.Is(err, datalog.ErrStatic) {
		t.Fatalf("static failure: err = %v, want ErrStatic", err)
	}
}

func TestSolveContextBudget(t *testing.T) {
	p, err := datalog.Load(spChain, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, stats, err := p.SolveContext(context.Background(), nil, datalog.WithMaxFacts(3))
	if !errors.Is(err, datalog.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var ee *datalog.EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %T, want *EngineError", err)
	}
	if m == nil || stats.Derived == 0 {
		t.Fatal("budget breach must return the partial model and stats")
	}
}

func TestSolveContextCanceledOmegaLimit(t *testing.T) {
	p, err := datalog.Load(omegaLimit, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With the divergence detector disabled, only the deadline stops
	// the ω-limit program.
	m, stats, err := p.SolveContext(context.Background(), nil,
		datalog.WithTimeout(50*time.Millisecond),
		datalog.WithDivergenceStreak(-1),
		datalog.WithCheckEvery(16))
	if !errors.Is(err, datalog.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if m == nil {
		t.Fatal("timed-out solve must return the partial model")
	}
	if !m.Has("p", datalog.Sym("b")) {
		t.Fatal("partial model must keep the fact p(b, 1)")
	}
	if stats.Rounds == 0 {
		t.Fatalf("stats must reflect the partial work: %+v", stats)
	}
}

func TestSolveDivergenceDiagnosisFacade(t *testing.T) {
	p, err := datalog.Load(omegaLimit, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := p.Solve()
	if !errors.Is(err, datalog.ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
	var ee *datalog.EngineError
	if !errors.As(err, &ee) || ee.Divergence == nil {
		t.Fatalf("missing diagnosis: %v", err)
	}
	if ee.Divergence.Pred.Name() != "p" {
		t.Fatalf("offending predicate %s, want p", ee.Divergence.Pred)
	}
	if m == nil {
		t.Fatal("diverged solve must return the partial model")
	}
}
