// Package repro is a reproduction of Ross & Sagiv, "Monotonic Aggregation
// in Deductive Databases" (PODS 1992): a deductive-database engine whose
// semantics for recursion through aggregation is the minimal model over
// complete lattices of cost values.
//
// The public API lives in repro/datalog; see README.md for the layout,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// reproduced results. The benchmarks in bench_test.go regenerate the
// performance side of every experiment.
package repro
